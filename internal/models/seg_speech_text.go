package models

import (
	"mlexray/internal/graph"
	"mlexray/internal/tensor"
)

// SegInputSize is the segmentation model input resolution.
const SegInputSize = 32

// DeepLabMini is an FCN-style segmentation head with an atrous (dilated)
// convolution, predicting per-pixel classes at half resolution. The logits
// tensor is named "seg_logits".
func DeepLabMini(seed int64) *graph.Model {
	n := newNet("deeplab-mini", seed)
	in := n.b.Input("input", tensor.F32, 1, SegInputSize, SegInputSize, 3)
	x := n.convBN("conv1", in, 8, 3, 2, 1, "relu")
	x = n.convBN("conv2", x, 12, 3, 1, 1, "relu")
	x = n.convBN("atrous", x, 12, 3, 1, 2, "relu") // dilation 2
	logits := n.convHead("classifier", x, 3)
	n.b.RenameTensor(logits, "seg_logits")
	out := n.b.Node(graph.OpSoftmax, "softmax", graph.Attrs{Axis: 3}, logits)
	n.b.Output(out)
	n.b.Meta(graph.Meta{
		Task: "segmentation", InputH: SegInputSize, InputW: SegInputSize, InputC: 3,
		ChannelOrder: "RGB", NormLo: 0, NormHi: 1, Resize: "area", NumClasses: 3,
	})
	return n.b.MustFinish()
}

// KWSFrames / KWSBins are the spectrogram input dimensions (1024 samples,
// 64-sample frames, 32-sample hop).
const (
	KWSFrames = 31
	KWSBins   = 33
)

// KWSMini is a conv-on-spectrogram keyword spotter. specNorm names the
// spectrogram normalization convention of its training pipeline — the paper
// evaluates two speech models from different pipelines whose conventions
// differ (Figure 4c), so the zoo trains one model per convention.
func KWSMini(seed int64, variant string, specNorm string) *graph.Model {
	n := newNet("kws-mini-"+variant, seed)
	in := n.b.Input("input", tensor.F32, 1, KWSFrames, KWSBins, 1)
	x := n.convBN("conv1", in, 8, 3, 2, 1, "relu")
	x = n.convBN("conv2", x, 16, 3, 2, 1, "relu")
	out := n.classifierHead(x, 8)
	n.b.Output(out)
	n.b.Meta(graph.Meta{
		Task: "speech", InputH: KWSFrames, InputW: KWSBins, InputC: 1,
		NumClasses: 8, SpecNorm: specNorm,
	})
	return n.b.MustFinish()
}

// TextDim is the embedding width of the text models.
const TextDim = 16

// NNLMMini is a bag-of-embeddings sentiment classifier (the NNLM-embedding
// stand-in): embedding -> mean over tokens -> 2-layer MLP. The embedding
// output tensor is named "embeddings" for the §A case-folding experiment.
func NNLMMini(seed int64, seqLen, vocab int) *graph.Model {
	n := newNet("nnlm-mini", seed)
	ids := n.b.Input("ids", tensor.I32, 1, seqLen)
	table := tensor.New(tensor.F32, vocab, TextDim)
	tensor.GlorotInit(n.rng, table, vocab, TextDim)
	x := n.b.Node(graph.OpEmbedding, "embed", graph.Attrs{}, ids, n.b.Const("embed/table", table))
	n.b.RenameTensor(x, "embeddings")
	// Mean over tokens via a [1, 1, T, D] view and the spatial Mean op.
	x = n.b.Node(graph.OpReshape, "as_nhwc", graph.Attrs{NewShape: []int{1, 1, seqLen, TextDim}}, x)
	x = n.b.Node(graph.OpMean, "pool", graph.Attrs{}, x)
	x = n.dense("fc1", x, TextDim)
	x = n.b.Node(graph.OpReLU, "relu", graph.Attrs{}, x)
	x = n.dense("fc2", x, 2)
	n.b.RenameTensor(x, "logits")
	out := n.b.Node(graph.OpSoftmax, "softmax", graph.Attrs{Axis: 1}, x)
	n.b.Output(out)
	n.b.Meta(graph.Meta{Task: "text", NumClasses: 2, SeqLen: seqLen, VocabSize: vocab})
	return n.b.MustFinish()
}

// MobileBertMini is a one-block transformer sentiment classifier: embedding
// -> self-attention -> residual -> layer norm -> mean pool -> classifier.
func MobileBertMini(seed int64, seqLen, vocab int) *graph.Model {
	n := newNet("mobilebert-mini", seed)
	ids := n.b.Input("ids", tensor.I32, 1, seqLen)
	table := tensor.New(tensor.F32, vocab, TextDim)
	tensor.GlorotInit(n.rng, table, vocab, TextDim)
	x := n.b.Node(graph.OpEmbedding, "embed", graph.Attrs{}, ids, n.b.Const("embed/table", table))
	n.b.RenameTensor(x, "embeddings")

	attnConsts := make([]int, 8)
	for i, nm := range []string{"q", "k", "v", "o"} {
		w := tensor.New(tensor.F32, TextDim, TextDim)
		tensor.GlorotInit(n.rng, w, TextDim, TextDim)
		bias := tensor.New(tensor.F32, TextDim)
		attnConsts[2*i] = n.b.Const("attn/"+nm+"/w", w)
		attnConsts[2*i+1] = n.b.Const("attn/"+nm+"/b", bias)
	}
	att := n.b.Node(graph.OpSelfAttention, "attn", graph.Attrs{NumHeads: 2},
		x, attnConsts[0], attnConsts[1], attnConsts[2], attnConsts[3],
		attnConsts[4], attnConsts[5], attnConsts[6], attnConsts[7])
	h := n.b.Node(graph.OpAdd, "residual", graph.Attrs{}, x, att)
	gamma := tensor.New(tensor.F32, TextDim)
	gamma.Fill(1)
	beta := tensor.New(tensor.F32, TextDim)
	h = n.b.Node(graph.OpLayerNorm, "ln", graph.Attrs{Eps: 1e-5},
		h, n.b.Const("ln/gamma", gamma), n.b.Const("ln/beta", beta))

	h = n.b.Node(graph.OpReshape, "as_nhwc", graph.Attrs{NewShape: []int{1, 1, seqLen, TextDim}}, h)
	h = n.b.Node(graph.OpMean, "pool", graph.Attrs{}, h)
	h = n.dense("fc", h, 2)
	n.b.RenameTensor(h, "logits")
	out := n.b.Node(graph.OpSoftmax, "softmax", graph.Attrs{Axis: 1}, h)
	n.b.Output(out)
	n.b.Meta(graph.Meta{Task: "text", NumClasses: 2, SeqLen: seqLen, VocabSize: vocab})
	return n.b.MustFinish()
}

// WithInGraphPreprocessing returns a variant of a trained classifier that
// embeds its preprocessing into the graph (the §A EfficientDet pattern):
// the model takes the raw 64x64 capture (float 0..255), normalizes with
// in-graph Mul/Add constants and resizes with an in-graph bilinear node.
// Such models are structurally immune to app-side normalization and resize
// bugs — the appendix's point about reducing the deployment bug surface.
func WithInGraphPreprocessing(src *graph.Model, rawSize int) (*graph.Model, error) {
	b := graph.NewBuilder(src.Name + "-ingraph")
	in := b.Input("raw_input", tensor.F32, 1, rawSize, rawSize, src.Meta.InputC)
	// Normalize 0..255 into the model's expected range.
	scale := tensor.New(tensor.F32, 1, src.Meta.InputC)
	shift := tensor.New(tensor.F32, 1, src.Meta.InputC)
	for c := 0; c < src.Meta.InputC; c++ {
		scale.F[c] = float32((src.Meta.NormHi - src.Meta.NormLo) / 255.0)
		shift.F[c] = float32(src.Meta.NormLo)
	}
	x := b.Node(graph.OpMul, "pre/scale", graph.Attrs{}, in, b.Const("pre/scale_c", scale))
	x = b.Node(graph.OpAdd, "pre/shift", graph.Attrs{}, x, b.Const("pre/shift_c", shift))
	x = b.Node(graph.OpResizeBilinear, "pre/resize",
		graph.Attrs{TargetH: src.Meta.InputH, TargetW: src.Meta.InputW}, x)

	// Splice the source graph in, remapping tensor ids.
	remap := make(map[int]int, len(src.Tensors))
	remap[src.Inputs[0]] = x
	for id, info := range src.Tensors {
		if c, ok := src.Consts[id]; ok {
			remap[id] = b.Const(info.Name, c.Clone())
			_ = info
		}
	}
	for _, nd := range src.Nodes {
		inputs := make([]int, len(nd.Inputs))
		for i, id := range nd.Inputs {
			m, ok := remap[id]
			if !ok {
				return nil, errMissingTensor(src, id)
			}
			inputs[i] = m
		}
		out := b.Node(nd.Op, nd.Name, nd.Attrs, inputs...)
		remap[nd.Outputs[0]] = out
		b.RenameTensor(out, src.Tensors[nd.Outputs[0]].Name)
	}
	for _, outID := range src.Outputs {
		b.Output(remap[outID])
	}
	meta := src.Meta
	meta.InputH = rawSize
	meta.InputW = rawSize
	meta.NormLo = 0
	meta.NormHi = 255
	meta.Resize = "ingraph"
	b.Meta(meta)
	m, err := b.Finish()
	if err != nil {
		return nil, err
	}
	m.Format = src.Format
	return m, nil
}

func errMissingTensor(m *graph.Model, id int) error {
	return &missingTensorError{model: m.Name, id: id}
}

type missingTensorError struct {
	model string
	id    int
}

func (e *missingTensorError) Error() string {
	return "models: splice of " + e.model + " references unproduced tensor"
}
