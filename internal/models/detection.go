package models

import (
	"math"
	"sort"

	"mlexray/internal/graph"
	"mlexray/internal/tensor"
)

// DetectionInputSize is the detector input resolution (matches the raw
// SynthCOCO capture size; detection pipelines resize 1:1).
const DetectionInputSize = 48

// SSDGrid is the anchor grid resolution (stride-8 backbone on 48px input).
const SSDGrid = 6

// SSDAnchorSize is the single anchor's normalized height/width.
const SSDAnchorSize = 14.0 / 48.0

// SSDAnchors returns the anchor table: one centred anchor per grid cell,
// rows of [cy, cx, h, w] in normalized coordinates.
func SSDAnchors() [][4]float64 {
	anchors := make([][4]float64, 0, SSDGrid*SSDGrid)
	for gy := 0; gy < SSDGrid; gy++ {
		for gx := 0; gx < SSDGrid; gx++ {
			anchors = append(anchors, [4]float64{
				(float64(gy) + 0.5) / SSDGrid,
				(float64(gx) + 0.5) / SSDGrid,
				SSDAnchorSize,
				SSDAnchorSize,
			})
		}
	}
	return anchors
}

// SSDMini is a single-shot detector: a stride-8 conv backbone with parallel
// class and box heads over a 6x6 anchor grid. Outputs: softmaxed class
// scores [1, 36, numClasses] and raw box offsets [1, 36, 4]. The logits
// tensor is named "cls_logits" and the offsets "box_preds" for the trainer.
func SSDMini(seed int64) *graph.Model {
	n := newNet("ssd-mini", seed)
	in := n.b.Input("input", tensor.F32, 1, DetectionInputSize, DetectionInputSize, 3)
	x := n.convBN("conv1", in, 12, 3, 2, 1, "relu")
	x = n.convBN("conv2", x, 20, 3, 2, 1, "relu")
	x = n.convBN("conv3", x, 32, 3, 2, 1, "relu")

	nAnchors := SSDGrid * SSDGrid
	cls := n.convHead("cls_head", x, 4) // 3 classes + background
	cls = n.b.Node(graph.OpReshape, "cls_reshape",
		graph.Attrs{NewShape: []int{1, nAnchors, 4}}, cls)
	n.b.RenameTensor(cls, "cls_logits")
	clsOut := n.b.Node(graph.OpSoftmax, "cls_softmax", graph.Attrs{Axis: 2}, cls)

	box := n.convHead("box_head", x, 4)
	box = n.b.Node(graph.OpReshape, "box_reshape",
		graph.Attrs{NewShape: []int{1, nAnchors, 4}}, box)
	n.b.RenameTensor(box, "box_preds")

	n.b.Output(clsOut)
	n.b.Output(box)
	n.b.Meta(graph.Meta{
		Task: "detection", InputH: DetectionInputSize, InputW: DetectionInputSize, InputC: 3,
		ChannelOrder: "RGB", NormLo: -1, NormHi: 1, Resize: "area",
		NumClasses: 4, Anchors: SSDAnchors(),
	})
	return n.b.MustFinish()
}

// FRCNNMini is the two-stage detector stand-in: a shared backbone, an
// objectness stage and a cascaded refinement head (class + box on
// objectness-weighted features). It trains with the same SSD loss; the
// architectural contrast matches the paper's SSD-vs-FasterRCNN comparison
// in Figure 4b.
func FRCNNMini(seed int64) *graph.Model {
	n := newNet("frcnn-mini", seed)
	in := n.b.Input("input", tensor.F32, 1, DetectionInputSize, DetectionInputSize, 3)
	x := n.convBN("conv1", in, 12, 3, 2, 1, "relu")
	x = n.convBN("conv2", x, 20, 3, 2, 1, "relu")
	x = n.convBN("conv3", x, 32, 3, 2, 1, "relu")

	// Stage 1: objectness gate per cell.
	obj := n.convHead("rpn_obj", x, 32)
	obj = n.b.Node(graph.OpSigmoid, "rpn_sigmoid", graph.Attrs{}, obj)
	// Gate the shared features (proposal attention), then refine.
	gated := n.b.Node(graph.OpMul, "rpn_gate", graph.Attrs{}, x, obj)
	h := n.convBN("refine", gated, 32, 3, 1, 1, "relu")

	nAnchors := SSDGrid * SSDGrid
	cls := n.convHead("cls_head", h, 4)
	cls = n.b.Node(graph.OpReshape, "cls_reshape",
		graph.Attrs{NewShape: []int{1, nAnchors, 4}}, cls)
	n.b.RenameTensor(cls, "cls_logits")
	clsOut := n.b.Node(graph.OpSoftmax, "cls_softmax", graph.Attrs{Axis: 2}, cls)

	box := n.convHead("box_head", h, 4)
	box = n.b.Node(graph.OpReshape, "box_reshape",
		graph.Attrs{NewShape: []int{1, nAnchors, 4}}, box)
	n.b.RenameTensor(box, "box_preds")

	n.b.Output(clsOut)
	n.b.Output(box)
	n.b.Meta(graph.Meta{
		Task: "detection", InputH: DetectionInputSize, InputW: DetectionInputSize, InputC: 3,
		ChannelOrder: "RGB", NormLo: -1, NormHi: 1, Resize: "area",
		NumClasses: 4, Anchors: SSDAnchors(),
	})
	return n.b.MustFinish()
}

// convHead adds a bias-carrying 1x1 conv without normalization (prediction
// heads keep raw scale).
func (n *net) convHead(name string, x int, outC int) int {
	inC := n.b.Shape(x)[3]
	w := tensor.New(tensor.F32, outC, 1, 1, inC)
	tensor.HeInit(n.rng, w, inC)
	bias := tensor.New(tensor.F32, outC)
	return n.b.Node(graph.OpConv2D, name,
		graph.Attrs{StrideH: 1, StrideW: 1}, x, n.b.Const(name+"/w", w), n.b.Const(name+"/b", bias))
}

// Detection is one decoded detection.
type Detection struct {
	Box   [4]float64 // cy, cx, h, w (normalized)
	Class int        // 1-based foreground class
	Score float64
}

// IoU computes intersection-over-union of two center-format boxes.
func IoU(a, b [4]float64) float64 {
	ay0, ay1 := a[0]-a[2]/2, a[0]+a[2]/2
	ax0, ax1 := a[1]-a[3]/2, a[1]+a[3]/2
	by0, by1 := b[0]-b[2]/2, b[0]+b[2]/2
	bx0, bx1 := b[1]-b[3]/2, b[1]+b[3]/2
	iy := math.Min(ay1, by1) - math.Max(ay0, by0)
	ix := math.Min(ax1, bx1) - math.Max(ax0, bx0)
	if iy <= 0 || ix <= 0 {
		return 0
	}
	inter := iy * ix
	union := a[2]*a[3] + b[2]*b[3] - inter
	if union <= 0 {
		return 0
	}
	return inter / union
}

// EncodeBox converts a ground-truth box into anchor-relative offsets
// (dy, dx, log dh, log dw), the SSD regression target.
func EncodeBox(gt [4]float64, anchor [4]float64) [4]float64 {
	return [4]float64{
		(gt[0] - anchor[0]) / anchor[2],
		(gt[1] - anchor[1]) / anchor[3],
		math.Log(gt[2] / anchor[2]),
		math.Log(gt[3] / anchor[3]),
	}
}

// DecodeBox inverts EncodeBox.
func DecodeBox(offsets [4]float64, anchor [4]float64) [4]float64 {
	return [4]float64{
		anchor[0] + offsets[0]*anchor[2],
		anchor[1] + offsets[1]*anchor[3],
		anchor[2] * math.Exp(offsets[2]),
		anchor[3] * math.Exp(offsets[3]),
	}
}

// MatchAnchors assigns each anchor a class (0 = background) and box target
// from the ground truth: positive when IoU >= 0.5, plus the best anchor for
// every ground-truth box.
func MatchAnchors(anchors [][4]float64, gtBoxes [][4]float64, gtClasses []int) (clsTargets []int32, boxTargets []float32) {
	clsTargets = make([]int32, len(anchors))
	boxTargets = make([]float32, len(anchors)*4)
	assign := func(a int, g int) {
		clsTargets[a] = int32(gtClasses[g])
		enc := EncodeBox(gtBoxes[g], anchors[a])
		for j := 0; j < 4; j++ {
			boxTargets[a*4+j] = float32(enc[j])
		}
	}
	for a := range anchors {
		bestIoU, bestG := 0.0, -1
		for g := range gtBoxes {
			if iou := IoU(anchors[a], gtBoxes[g]); iou > bestIoU {
				bestIoU, bestG = iou, g
			}
		}
		if bestG >= 0 && bestIoU >= 0.5 {
			assign(a, bestG)
		}
	}
	// Guarantee every ground-truth box at least one anchor.
	for g := range gtBoxes {
		bestIoU, bestA := -1.0, -1
		for a := range anchors {
			if iou := IoU(anchors[a], gtBoxes[g]); iou > bestIoU {
				bestIoU, bestA = iou, a
			}
		}
		if bestA >= 0 {
			assign(bestA, g)
		}
	}
	return clsTargets, boxTargets
}

// DecodeDetections converts model outputs (softmax class scores [A, C] and
// box offsets [A, 4]) into thresholded, NMS-filtered detections.
func DecodeDetections(scores, boxes *tensor.Tensor, anchors [][4]float64, scoreThresh, nmsIoU float64) []Detection {
	nA := len(anchors)
	nC := scores.Len() / nA
	var dets []Detection
	for a := 0; a < nA; a++ {
		bestC, bestS := 0, 0.0
		for c := 1; c < nC; c++ {
			if s := float64(scores.F[a*nC+c]); s > bestS {
				bestS, bestC = s, c
			}
		}
		if bestC == 0 || bestS < scoreThresh {
			continue
		}
		off := [4]float64{
			float64(boxes.F[a*4]), float64(boxes.F[a*4+1]),
			float64(boxes.F[a*4+2]), float64(boxes.F[a*4+3]),
		}
		dets = append(dets, Detection{Box: DecodeBox(off, anchors[a]), Class: bestC, Score: bestS})
	}
	return NMS(dets, nmsIoU)
}

// NMS performs per-class greedy non-maximum suppression.
func NMS(dets []Detection, iouThresh float64) []Detection {
	sort.Slice(dets, func(i, j int) bool { return dets[i].Score > dets[j].Score })
	var kept []Detection
	for _, d := range dets {
		ok := true
		for _, k := range kept {
			if k.Class == d.Class && IoU(k.Box, d.Box) > iouThresh {
				ok = false
				break
			}
		}
		if ok {
			kept = append(kept, d)
		}
	}
	return kept
}
