// Package models contains the miniature architecture builders standing in
// for the paper's evaluation models (MobileNet v1/v2/v3, ResNet, Inception,
// DenseNet, SSD, a two-stage detector head, DeepLab, keyword spotting, NNLM
// and a tiny transformer). All builders emit checkpoint-format graphs:
// explicit BatchNorm and activation nodes, ready for the trainer, to be
// folded and fused by the converter on the way to the edge.
//
// Each model's Meta records its training pipeline's input conventions —
// channel order, normalization range, resize filter — mirroring the paper's
// observation that different model families expect different conventions
// (MobileNet [-1,1] RGB, DenseNet [0,1] BGR, ...), which is precisely the
// information that gets lost in deployment handoffs.
package models

import (
	"fmt"
	"math/rand"

	"mlexray/internal/graph"
	"mlexray/internal/tensor"
)

// ClassifierInputSize is the model-input resolution of the classification
// zoo. The raw dataset is 64x64; 64/28 is a non-integer downsample factor,
// which keeps the area-vs-bilinear resize distinction observable.
const ClassifierInputSize = 28

// net wraps a graph builder with weight-initialization helpers.
type net struct {
	b   *graph.Builder
	rng *rand.Rand
}

func newNet(name string, seed int64) *net {
	return &net{b: graph.NewBuilder(name), rng: rand.New(rand.NewSource(seed))}
}

// convBN adds conv + BatchNorm (+ optional explicit activation node).
// act is "", "relu", "relu6" or "hswish".
func (n *net) convBN(name string, x int, outC, k, stride, dilation int, act string) int {
	inShape := n.b.Shape(x)
	inC := inShape[3]
	w := tensor.New(tensor.F32, outC, k, k, inC)
	tensor.HeInit(n.rng, w, k*k*inC)
	pt, pb := graph.SamePadding(inShape[1], k, stride, max1(dilation))
	pl, pr := graph.SamePadding(inShape[2], k, stride, max1(dilation))
	x = n.b.Node(graph.OpConv2D, name,
		graph.Attrs{StrideH: stride, StrideW: stride, DilationH: dilation, DilationW: dilation,
			PadT: pt, PadB: pb, PadL: pl, PadR: pr},
		x, n.b.Const(name+"/w", w))
	x = n.batchNorm(name+"/bn", x, outC)
	return n.activation(name, x, act)
}

// dwBN adds depthwise conv + BatchNorm (+ activation).
func (n *net) dwBN(name string, x int, k, stride int, act string) int {
	inShape := n.b.Shape(x)
	c := inShape[3]
	w := tensor.New(tensor.F32, 1, k, k, c)
	tensor.HeInit(n.rng, w, k*k)
	pt, pb := graph.SamePadding(inShape[1], k, stride, 1)
	pl, pr := graph.SamePadding(inShape[2], k, stride, 1)
	x = n.b.Node(graph.OpDepthwiseConv2D, name,
		graph.Attrs{StrideH: stride, StrideW: stride, PadT: pt, PadB: pb, PadL: pl, PadR: pr, DepthMultiplier: 1},
		x, n.b.Const(name+"/w", w))
	x = n.batchNorm(name+"/bn", x, c)
	return n.activation(name, x, act)
}

// dwValidAfterPad adds an explicit Pad node followed by a VALID stride-2
// depthwise conv — the TFLite MobileNet lowering pattern, which exercises
// the Pad op in deployment graphs (and the Pad row of Table 4).
func (n *net) dwValidAfterPad(name string, x int, k, stride int, act string) int {
	inShape := n.b.Shape(x)
	c := inShape[3]
	pt, pb := graph.SamePadding(inShape[1], k, stride, 1)
	pl, pr := graph.SamePadding(inShape[2], k, stride, 1)
	x = n.b.Node(graph.OpPad, name+"/pad",
		graph.Attrs{Paddings: [][2]int{{0, 0}, {pt, pb}, {pl, pr}, {0, 0}}}, x)
	w := tensor.New(tensor.F32, 1, k, k, c)
	tensor.HeInit(n.rng, w, k*k)
	x = n.b.Node(graph.OpDepthwiseConv2D, name,
		graph.Attrs{StrideH: stride, StrideW: stride, DepthMultiplier: 1}, x, n.b.Const(name+"/w", w))
	x = n.batchNorm(name+"/bn", x, c)
	return n.activation(name, x, act)
}

func (n *net) batchNorm(name string, x int, c int) int {
	gamma := tensor.New(tensor.F32, c)
	gamma.Fill(1)
	beta := tensor.New(tensor.F32, c)
	mean := tensor.New(tensor.F32, c)
	variance := tensor.New(tensor.F32, c)
	variance.Fill(1)
	return n.b.Node(graph.OpBatchNorm, name, graph.Attrs{Eps: 1e-5},
		x, n.b.Const(name+"/gamma", gamma), n.b.Const(name+"/beta", beta),
		n.b.Const(name+"/mean", mean), n.b.Const(name+"/var", variance))
}

func (n *net) activation(name string, x int, act string) int {
	switch act {
	case "":
		return x
	case "relu":
		return n.b.Node(graph.OpReLU, name+"/relu", graph.Attrs{}, x)
	case "relu6":
		return n.b.Node(graph.OpReLU6, name+"/relu6", graph.Attrs{}, x)
	case "hswish":
		return n.b.Node(graph.OpHardSwish, name+"/hswish", graph.Attrs{}, x)
	}
	panic(fmt.Sprintf("models: unknown activation %q", act))
}

// dense adds a fully-connected layer (with bias, no activation).
func (n *net) dense(name string, x int, outC int) int {
	inShape := n.b.Shape(x)
	inC := 1
	for _, d := range inShape[1:] {
		inC *= d
	}
	w := tensor.New(tensor.F32, outC, inC)
	tensor.HeInit(n.rng, w, inC)
	bias := tensor.New(tensor.F32, outC)
	return n.b.Node(graph.OpDense, name, graph.Attrs{}, x, n.b.Const(name+"/w", w), n.b.Const(name+"/b", bias))
}

// classifierHead adds Mean -> FC(numClasses) -> Softmax, naming the logits
// tensor "logits".
func (n *net) classifierHead(x int, numClasses int) int {
	x = n.b.Node(graph.OpMean, "gap", graph.Attrs{}, x)
	x = n.dense("fc", x, numClasses)
	n.b.RenameTensor(x, "logits")
	return n.b.Node(graph.OpSoftmax, "softmax", graph.Attrs{Axis: 1}, x)
}

// seBlock adds a squeeze-excite module gated by AvgPool2D — the op whose
// quantized kernel carries the historical long-window defect, making every
// model with SE blocks (MobileNet-v3 style) collapse under quantization.
func (n *net) seBlock(name string, x int, reduce int) int {
	inShape := n.b.Shape(x)
	c := inShape[3]
	sq := n.b.Node(graph.OpAvgPool2D, name+"/pool",
		graph.Attrs{KernelH: inShape[1], KernelW: inShape[2], StrideH: inShape[1], StrideW: inShape[2]}, x)
	g := n.dense(name+"/fc1", sq, reduce)
	g = n.b.Node(graph.OpReLU, name+"/relu", graph.Attrs{}, g)
	g = n.dense(name+"/fc2", g, c)
	g = n.b.Node(graph.OpHardSigmoid, name+"/hsig", graph.Attrs{}, g)
	return n.b.Node(graph.OpMul, name+"/scale", graph.Attrs{}, x, g)
}

func max1(v int) int {
	if v < 1 {
		return 1
	}
	return v
}

func classifierMeta(name string, order string, lo, hi float64, resize string) graph.Meta {
	return graph.Meta{
		Task:         "classification",
		InputH:       ClassifierInputSize,
		InputW:       ClassifierInputSize,
		InputC:       3,
		ChannelOrder: order,
		NormLo:       lo,
		NormHi:       hi,
		Resize:       resize,
		NumClasses:   10,
	}
}
