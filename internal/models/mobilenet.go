package models

import (
	"mlexray/internal/graph"
	"mlexray/internal/tensor"
)

// MobileNetV1Mini is a depthwise-separable stack: the v1 pattern of
// conv -> [dw + pw] blocks with ReLU6 everywhere. Expects RGB in [-1, 1],
// area-averaged resize.
func MobileNetV1Mini(seed int64) *graph.Model {
	n := newNet("mobilenetv1-mini", seed)
	in := n.b.Input("input", tensor.F32, 1, ClassifierInputSize, ClassifierInputSize, 3)
	x := n.convBN("conv1", in, 8, 3, 2, 1, "relu6")

	ds := func(name string, x int, outC, stride int) int {
		x = n.dwBN(name+"/dw", x, 3, stride, "relu6")
		return n.convBN(name+"/pw", x, outC, 1, 1, 1, "relu6")
	}
	x = ds("ds1", x, 16, 1)
	x = ds("ds2", x, 24, 2)
	x = ds("ds3", x, 32, 1)

	out := n.classifierHead(x, 10)
	n.b.Output(out)
	n.b.Meta(classifierMeta("mobilenetv1-mini", "RGB", -1, 1, "area"))
	return n.b.MustFinish()
}

// MobileNetV2Mini uses inverted residual blocks with linear bottlenecks.
// One stride-2 block lowers through an explicit Pad node (the TFLite
// pattern). The classifier head reduces with the Mean op — the detail that
// spares v2 from the quantized average-pool defect, unlike v3.
func MobileNetV2Mini(seed int64) *graph.Model {
	n := newNet("mobilenetv2-mini", seed)
	in := n.b.Input("input", tensor.F32, 1, ClassifierInputSize, ClassifierInputSize, 3)
	x := n.convBN("conv1", in, 8, 3, 2, 1, "relu6")

	x = n.invertedResidual("block1", x, 16, 8, 1, false)
	x = n.invertedResidual("block2", x, 24, 16, 2, true)
	x = n.invertedResidual("block3", x, 32, 16, 1, false)

	x = n.convBN("conv_last", x, 32, 1, 1, 1, "relu6")
	out := n.classifierHead(x, 10)
	n.b.Output(out)
	n.b.Meta(classifierMeta("mobilenetv2-mini", "RGB", -1, 1, "area"))
	return n.b.MustFinish()
}

// invertedResidual is the v2 block: 1x1 expand (ReLU6) -> 3x3 depthwise
// (ReLU6) -> 1x1 linear project, with a residual add when the stride is 1
// and channel counts match.
func (n *net) invertedResidual(name string, x int, expandC, outC, stride int, padLowering bool) int {
	inC := n.b.Shape(x)[3]
	identity := x
	h := n.convBN(name+"/expand", x, expandC, 1, 1, 1, "relu6")
	if padLowering && stride == 2 {
		h = n.dwValidAfterPad(name+"/dw", h, 3, stride, "relu6")
	} else {
		h = n.dwBN(name+"/dw", h, 3, stride, "relu6")
	}
	h = n.convBN(name+"/project", h, outC, 1, 1, 1, "")
	if stride == 1 && inC == outC {
		return n.b.Node(graph.OpAdd, name+"/add", graph.Attrs{}, identity, h)
	}
	return h
}

// MobileNetV3Mini adds squeeze-excite gates (built on AvgPool2D) and
// hard-swish activations to the v2 block structure — the architecture whose
// quantized deployment the paper found broken even under the reference op
// resolver, with per-layer rMSE peaks at every SE average pool.
func MobileNetV3Mini(seed int64) *graph.Model {
	n := newNet("mobilenetv3-mini", seed)
	in := n.b.Input("input", tensor.F32, 1, ClassifierInputSize, ClassifierInputSize, 3)
	x := n.convBN("conv1", in, 8, 3, 2, 1, "hswish")

	x = n.v3Block("block1", x, 16, 8, 1)
	x = n.v3Block("block2", x, 24, 16, 2)
	x = n.v3Block("block3", x, 32, 16, 1)

	x = n.convBN("conv_last", x, 32, 1, 1, 1, "hswish")
	// v3's "efficient last stage" reduces with an average-pool layer (the
	// real architecture's choice), unlike v2's Mean op — so the classifier
	// path itself crosses the defective quantized kernel.
	shape := n.b.Shape(x)
	x = n.b.Node(graph.OpAvgPool2D, "head_pool",
		graph.Attrs{KernelH: shape[1], KernelW: shape[2], StrideH: shape[1], StrideW: shape[2]}, x)
	x = n.dense("fc", x, 10)
	n.b.RenameTensor(x, "logits")
	out := n.b.Node(graph.OpSoftmax, "softmax", graph.Attrs{Axis: 1}, x)
	n.b.Output(out)
	n.b.Meta(classifierMeta("mobilenetv3-mini", "RGB", -1, 1, "area"))
	return n.b.MustFinish()
}

// v3Block is an inverted residual with an SE gate after the depthwise stage.
func (n *net) v3Block(name string, x int, expandC, outC, stride int) int {
	inC := n.b.Shape(x)[3]
	identity := x
	h := n.convBN(name+"/expand", x, expandC, 1, 1, 1, "relu")
	h = n.dwBN(name+"/dw", h, 3, stride, "relu")
	h = n.seBlock(name+"/se", h, max1(expandC/4))
	h = n.convBN(name+"/project", h, outC, 1, 1, 1, "")
	if stride == 1 && inC == outC {
		return n.b.Node(graph.OpAdd, name+"/add", graph.Attrs{}, identity, h)
	}
	return h
}
