package replay

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"mlexray/internal/core"
	"mlexray/internal/interp"
	"mlexray/internal/ops"
	"mlexray/internal/storm"
	"mlexray/internal/tensor"
	"mlexray/internal/zoo"
)

// TestEmitReplayBenchJSON writes the replay-performance artifact CI tracks
// across PRs: ns/frame of the batched replay engine at several batch sizes
// and the allocation profile of the steady-state interpreter invoke. It
// runs only when BENCH_REPLAY_JSON names the output path, so ordinary test
// runs skip it.
func TestEmitReplayBenchJSON(t *testing.T) {
	path := os.Getenv("BENCH_REPLAY_JSON")
	if path == "" {
		t.Skip("set BENCH_REPLAY_JSON=<path> to emit the benchmark artifact")
	}

	type entry struct {
		NsPerFrame        float64 `json:"ns_per_frame"`
		Backend           string  `json:"backend,omitempty"`
		FramesPerSec      float64 `json:"frames_per_sec,omitempty"`
		LogBytesPerFrame  float64 `json:"log_bytes_per_frame,omitempty"`
		WireBytesPerFrame float64 `json:"wire_bytes_per_frame,omitempty"`
		AllocsPerOp       int64   `json:"allocs_per_op"`
		BytesPerOp        int64   `json:"bytes_per_op"`
		Iterations        int     `json:"iterations"`
		// Storm-harness fields (the ingest_storm entries only).
		P99LatencyNs int64                 `json:"p99_latency_ns,omitempty"`
		PeakRSSBytes int64                 `json:"peak_rss_bytes,omitempty"`
		StatusCounts map[string]int        `json:"status_counts,omitempty"`
		LatencyHist  []storm.LatencyBucket `json:"latency_hist,omitempty"`
		Shards       int                   `json:"shards,omitempty"`
	}
	results := map[string]entry{}

	for _, batch := range []int{1, 8, 32} {
		batch := batch
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			benchReplay(b, 1, batch)
		})
		results[fmt.Sprintf("replay_batch%d", batch)] = entry{
			NsPerFrame:  r.Extra["ns/frame"],
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Iterations:  r.N,
		}
	}

	// Fleet scheduler scaling: ns/frame with 1, 2 and 4 simulated devices
	// (one worker each) sharding the same replay — the fleet path's entry in
	// the perf trajectory.
	for _, ndev := range []int{1, 2, 4} {
		ndev := ndev
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			benchReplayFleet(b, ndev)
		})
		results[fmt.Sprintf("replay_fleet_dev%d", ndev)] = entry{
			NsPerFrame:  r.Extra["ns/frame"],
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Iterations:  r.N,
		}
	}

	// Full-capture replay in both log encodings: ns/frame and serialized
	// bytes/frame — the encoding datapoint of the perf trajectory. The
	// binary path must clear 1.8x the JSONL full-capture throughput (the
	// codec-redesign target; measured ~3x on the reference machine).
	for _, format := range []core.LogFormat{core.FormatJSONL, core.FormatBinary} {
		format := format
		r := testing.Benchmark(func(b *testing.B) {
			benchReplayFullCapture(b, format)
		})
		results["replay_full_"+format.String()] = entry{
			NsPerFrame:       r.Extra["ns/frame"],
			LogBytesPerFrame: r.Extra["log-bytes/frame"],
			AllocsPerOp:      r.AllocsPerOp(),
			BytesPerOp:       r.AllocedBytesPerOp(),
			Iterations:       r.N,
		}
	}
	// The JSONL path with the parallel encode stage disabled — the baseline
	// that records what worker pre-marshaling buys (on multi-core hosts the
	// collector's serial share shrinks to seq-patch + concatenate).
	rSerial := testing.Benchmark(func(b *testing.B) {
		benchReplayFullCaptureSerialJSONL(b)
	})
	results["replay_full_jsonl_serial"] = entry{
		NsPerFrame:       rSerial.Extra["ns/frame"],
		LogBytesPerFrame: rSerial.Extra["log-bytes/frame"],
		AllocsPerOp:      rSerial.AllocsPerOp(),
		BytesPerOp:       rSerial.AllocedBytesPerOp(),
		Iterations:       rSerial.N,
	}

	jsonlFull := results["replay_full_jsonl"]
	binFull := results["replay_full_binary"]
	if binFull.NsPerFrame >= jsonlFull.NsPerFrame {
		t.Errorf("binary full-capture replay (%.0f ns/frame) not faster than JSONL (%.0f ns/frame)",
			binFull.NsPerFrame, jsonlFull.NsPerFrame)
	}
	if binFull.LogBytesPerFrame >= jsonlFull.LogBytesPerFrame {
		t.Errorf("binary log (%.0f B/frame) not smaller than JSONL (%.0f B/frame)",
			binFull.LogBytesPerFrame, jsonlFull.LogBytesPerFrame)
	}
	t.Logf("full-capture throughput: binary %.2fx JSONL (%.0f vs %.0f ns/frame)",
		jsonlFull.NsPerFrame/binFull.NsPerFrame, binFull.NsPerFrame, jsonlFull.NsPerFrame)
	// Pre-encoded and serial-collector JSONL write the same format: the
	// parallel encode stage may only move work, never change the encoding.
	// (Exact byte counts jitter run to run — wall-clock latency values
	// serialize with varying digit counts — so compare within a hair.)
	got, want := jsonlFull.LogBytesPerFrame, results["replay_full_jsonl_serial"].LogBytesPerFrame
	if got < 0.995*want || got > 1.005*want {
		t.Errorf("pre-encoded JSONL writes %.0f B/frame, serial collector %.0f", got, want)
	}
	t.Logf("JSONL full-capture: pre-encode %.0f ns/frame vs serial collector %.0f ns/frame",
		jsonlFull.NsPerFrame, results["replay_full_jsonl_serial"].NsPerFrame)

	// Ingestion throughput: one pre-captured full-capture stream uploaded per
	// iteration through a RemoteSink into a live collector that validates it
	// incrementally against the same log — ns/frame, frames/sec and wire
	// bytes/frame with and without gzip (the telemetry-upload datapoint of
	// the perf trajectory). Gzip must shrink the wire.
	for _, variant := range []struct {
		name    string
		gz      bool
		durable bool
	}{
		{"ingest_binary_gzip", true, false},
		// The durable collector: every chunk fsynced to its write-ahead
		// segment before the ack — prices exact crash recovery against the
		// in-memory ingest_binary baseline.
		{"ingest_binary_durable", false, true},
	} {
		variant := variant
		r := testing.Benchmark(func(b *testing.B) {
			dir := ""
			if variant.durable {
				dir = b.TempDir()
			}
			benchIngestUpload(b, variant.gz, dir, false)
		})
		results[variant.name] = entry{
			NsPerFrame:        r.Extra["ns/frame"],
			FramesPerSec:      r.Extra["frames/sec"],
			WireBytesPerFrame: r.Extra["wire-bytes/frame"],
			AllocsPerOp:       r.AllocsPerOp(),
			BytesPerOp:        r.AllocedBytesPerOp(),
			Iterations:        r.N,
		}
	}
	// The instrumentation-overhead pin: the same in-memory upload against a
	// bare collector (DisableMetrics — the pre-observability baseline,
	// published as ingest_binary) and a fully instrumented one (counters,
	// latency histograms, trace ring). Like the gemm race below, the two
	// configurations run in interleaved rounds and score by minimum
	// ns/frame, because localhost HTTP jitter between back-to-back runs is
	// larger than the margin under test (five rounds, not gemm's three:
	// the upload path is noisier than the pure-CPU invoke loop).
	const ingestRounds = 5
	for round := 0; round < ingestRounds; round++ {
		for _, variant := range []struct {
			name  string
			instr bool
		}{
			{"ingest_binary", false},
			{"ingest_binary_instrumented", true},
		} {
			variant := variant
			r := testing.Benchmark(func(b *testing.B) {
				benchIngestUpload(b, false, "", variant.instr)
			})
			e := entry{
				NsPerFrame:        r.Extra["ns/frame"],
				FramesPerSec:      r.Extra["frames/sec"],
				WireBytesPerFrame: r.Extra["wire-bytes/frame"],
				AllocsPerOp:       r.AllocsPerOp(),
				BytesPerOp:        r.AllocedBytesPerOp(),
				Iterations:        r.N,
			}
			if prev, ok := results[variant.name]; ok && prev.NsPerFrame <= e.NsPerFrame {
				continue
			}
			results[variant.name] = e
		}
	}
	if gzWire, plainWire := results["ingest_binary_gzip"].WireBytesPerFrame, results["ingest_binary"].WireBytesPerFrame; gzWire >= plainWire {
		t.Errorf("gzip upload wire bytes %.0f/frame not below plain %.0f/frame", gzWire, plainWire)
	}
	t.Logf("ingest: %.0f frames/sec plain (%.0f wire B/frame), %.0f frames/sec gzip (%.0f wire B/frame)",
		results["ingest_binary"].FramesPerSec, results["ingest_binary"].WireBytesPerFrame,
		results["ingest_binary_gzip"].FramesPerSec, results["ingest_binary_gzip"].WireBytesPerFrame)
	// The durability tax is hardware-dependent (fsync latency), so log it
	// rather than asserting an ordering a fast NVMe could invert.
	t.Logf("ingest durable: %.0f frames/sec (%.2fx the in-memory path)",
		results["ingest_binary_durable"].FramesPerSec,
		results["ingest_binary_durable"].NsPerFrame/results["ingest_binary"].NsPerFrame)
	// Observability must be effectively free on the ingest hot path: the
	// instrumented collector (atomic counters, log-bucketed histograms, the
	// bounded trace ring) stays within 3% of the bare one.
	overhead := results["ingest_binary_instrumented"].NsPerFrame / results["ingest_binary"].NsPerFrame
	if overhead >= 1.03 {
		t.Errorf("instrumented ingest %.4fx the bare collector (%.0f vs %.0f ns/frame), want < 1.03x",
			overhead, results["ingest_binary_instrumented"].NsPerFrame, results["ingest_binary"].NsPerFrame)
	} else {
		t.Logf("ingest instrumented: %.4fx the bare collector (%.0f vs %.0f ns/frame)",
			overhead, results["ingest_binary_instrumented"].NsPerFrame, results["ingest_binary"].NsPerFrame)
	}

	// Collector under fire: the storm harness drives a live collector with a
	// fault-injecting device swarm (disconnects, slow-loris, corrupt bytes,
	// lost acks, duplicated/reordered retries, one mid-storm kill/restart)
	// and records sustained throughput, p99 ingest latency, peak RSS and the
	// status histogram — the graceful-degradation datapoints of the perf
	// trajectory. The clean variant is the fault-free swarm baseline the
	// chaos numbers are read against.
	for _, variant := range []struct {
		name   string
		faults storm.Faults
		kill   int
		shards int
	}{
		{"ingest_storm_clean", storm.Faults{}, 0, 0},
		{"ingest_storm", storm.AllFaults(), 60, 0},
		// The sharded topology: the same chaos swarm uploading through the
		// consistent-hash gateway into a 4-shard ring, with the kill act
		// taking down one shard (WAL rotation on) — throughput and latency
		// of horizontal ingest vs the single-collector rows above.
		{"ingest_sharded", storm.AllFaults(), 60, 4},
	} {
		// All variants run the durable collector with idle eviction: past
		// the session cap, slots only free when idle devices age out, so a
		// capped in-memory collector would strand the overflow forever.
		// (The sharded variant skips the per-shard session cap: the ring
		// already divides the fleet.)
		opts := storm.Options{
			Devices:         96,
			FramesPerDevice: 2,
			Faults:          variant.faults,
			Seed:            1,
			Shards:          variant.shards,
			DataDir:         t.TempDir(),
			IdleTimeout:     250 * time.Millisecond,
			ReadTimeout:     150 * time.Millisecond,
			WriteTimeout:    time.Second,
			Stragglers:      0.05,
			KillAfterChunks: variant.kill,
		}
		if variant.shards == 0 {
			opts.MaxSessions = 48
			opts.MaxChunksPerSec = 5
			opts.ChunkBurst = 1
		} else {
			opts.SegmentBytes = 4096
		}
		res, err := storm.Run(opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.CheckInvariants(); err != nil {
			t.Errorf("%s: %v", variant.name, err)
		}
		statuses := make(map[string]int, len(res.StatusCounts))
		for code, n := range res.StatusCounts {
			statuses[strconv.Itoa(code)] = n
		}
		results[variant.name] = entry{
			NsPerFrame:   res.Elapsed.Seconds() / float64(res.Frames) * 1e9,
			FramesPerSec: res.FramesPerSec,
			P99LatencyNs: res.P99Latency.Nanoseconds(),
			PeakRSSBytes: res.PeakRSSBytes,
			StatusCounts: statuses,
			LatencyHist:  res.LatencyHist,
			Shards:       res.Shards,
			Iterations:   1,
		}
		t.Logf("%s: %.0f frames/sec, p99 %v, rss %d MiB, statuses %v",
			variant.name, res.FramesPerSec, res.P99Latency.Round(time.Microsecond),
			res.PeakRSSBytes>>20, statuses)
	}

	entryZoo, err := zoo.Get("mobilenetv2-mini")
	if err != nil {
		t.Fatal(err)
	}
	m := entryZoo.Mobile
	in := tensor.New(tensor.F32, 1, m.Meta.InputH, m.Meta.InputW, m.Meta.InputC)
	in.Fill(0.3)
	ip, err := interp.New(m, ops.NewOptimized(ops.Fixed()))
	if err != nil {
		t.Fatal(err)
	}
	if err := ip.SetInput(0, in); err != nil {
		t.Fatal(err)
	}
	if err := ip.Invoke(); err != nil { // warm kernel caches
		t.Fatal(err)
	}
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := ip.Invoke(); err != nil {
				b.Fatal(err)
			}
		}
	})
	results["invoke_batch1"] = entry{
		NsPerFrame:  float64(r.NsPerOp()),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Iterations:  r.N,
	}
	if got := results["invoke_batch1"].AllocsPerOp; got != 0 {
		t.Errorf("steady-state Invoke allocates %d objects/op, want 0", got)
	}

	// Kernel-backend race on the same invoke hot loop: the float model under
	// every backend plus the quantized model's blocked-vs-packed-int8 pair —
	// the micro-kernel datapoints of the perf trajectory. Every configuration
	// must stay allocation-free in steady state, and the tiled backend must
	// clear 1.3x blocked on float (the register-tile target) and beat the
	// blocked quantized conv path on int8. The ratio asserts are between
	// configurations measured minutes apart if run back to back, and host
	// frequency drift over that span is larger than the assert margin — so
	// run the configurations in interleaved rounds and score each by its
	// minimum ns/frame (the least-perturbed observation).
	gemmConfigs := []struct {
		name    string
		backend ops.Backend
		quant   bool
	}{
		{"invoke_gemm_reference", ops.BackendReference, false},
		{"invoke_gemm_blocked", ops.BackendBlocked, false},
		{"invoke_gemm_tiled", ops.BackendTiled, false},
		{"invoke_gemm_int8_blocked", ops.BackendBlocked, true},
		{"invoke_gemm_int8", ops.BackendTiled, true},
	}
	const gemmRounds = 3
	for round := 0; round < gemmRounds; round++ {
		for _, cfg := range gemmConfigs {
			cfg := cfg
			r := testing.Benchmark(func(b *testing.B) {
				benchInvokeBackend(b, cfg.backend, cfg.quant)
			})
			if got := r.AllocsPerOp(); got != 0 {
				t.Errorf("%s: steady-state Invoke allocates %d objects/op, want 0", cfg.name, got)
			}
			e := entry{
				NsPerFrame:  r.Extra["ns/frame"],
				Backend:     cfg.backend.String(),
				AllocsPerOp: r.AllocsPerOp(),
				BytesPerOp:  r.AllocedBytesPerOp(),
				Iterations:  r.N,
			}
			if prev, ok := results[cfg.name]; ok && prev.NsPerFrame <= e.NsPerFrame {
				continue
			}
			results[cfg.name] = e
		}
	}
	blockedNs := results["invoke_gemm_blocked"].NsPerFrame
	tiledNs := results["invoke_gemm_tiled"].NsPerFrame
	if speedup := blockedNs / tiledNs; speedup < 1.3 {
		t.Errorf("tiled float backend %.2fx blocked (%.0f vs %.0f ns/frame), want >= 1.3x",
			speedup, tiledNs, blockedNs)
	} else {
		t.Logf("invoke gemm float: tiled %.2fx blocked (%.0f vs %.0f ns/frame)",
			speedup, tiledNs, blockedNs)
	}
	int8Blocked := results["invoke_gemm_int8_blocked"].NsPerFrame
	int8Tiled := results["invoke_gemm_int8"].NsPerFrame
	if int8Tiled >= int8Blocked {
		t.Errorf("int8 packed path (%.0f ns/frame) not faster than blocked quantized conv (%.0f ns/frame)",
			int8Tiled, int8Blocked)
	} else {
		t.Logf("invoke gemm int8: tiled %.2fx blocked (%.0f vs %.0f ns/frame)",
			int8Blocked/int8Tiled, int8Tiled, int8Blocked)
	}

	artifact := struct {
		Schema     string           `json:"schema"`
		Model      string           `json:"model"`
		Frames     int              `json:"frames_per_replay"`
		GoMaxProcs int              `json:"gomaxprocs"`
		Results    map[string]entry `json:"results"`
	}{
		Schema:     "mlexray-bench-replay/v1",
		Model:      "mobilenetv2-mini (optimized resolver, float)",
		Frames:     benchFrames,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Results:    results,
	}
	data, err := json.MarshalIndent(artifact, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", path)
}
