package replay

import (
	"bytes"
	"testing"

	"mlexray/internal/core"
	"mlexray/internal/datasets"
	"mlexray/internal/device"
	"mlexray/internal/graph"
	"mlexray/internal/imaging"
	"mlexray/internal/metrics"
	"mlexray/internal/ops"
	"mlexray/internal/pipeline"
	"mlexray/internal/runner"
	"mlexray/internal/zoo"
)

const testFrames = 6

var monOpts = []core.MonitorOption{core.WithCaptureMode(core.CaptureFull), core.WithPerLayer(true)}

// testImages returns the evaluation images of the standard test replay.
func testImages(t testing.TB, frames int) []*imaging.Image {
	t.Helper()
	return Images(datasets.SynthImageNet(5555, frames))
}

// testModel fetches a mobilenetv2-mini variant: the float mobile model, or
// the full-integer quantized one when quant is set.
func testModel(t testing.TB, quant bool) *graph.Model {
	t.Helper()
	entry, err := zoo.Get("mobilenetv2-mini")
	if err != nil {
		t.Fatal(err)
	}
	if quant {
		return entry.Quant
	}
	return entry.Mobile
}

// sequentialLog replays the samples the way the pre-runner code did: one
// pipeline, one monitor, frames in order.
func sequentialLog(t testing.TB, m *graph.Model, bug pipeline.Bug, resolver *ops.Resolver, dev *device.Profile) *core.Log {
	t.Helper()
	mon := core.NewMonitor(monOpts...)
	cl, err := pipeline.NewClassifier(m, pipeline.Options{Resolver: resolver, Monitor: mon, Bug: bug, Device: dev})
	if err != nil {
		t.Fatal(err)
	}
	for _, im := range testImages(t, testFrames) {
		if _, _, err := cl.Classify(im); err != nil {
			t.Fatal(err)
		}
	}
	return mon.Log()
}

// batchedLog replays the standard samples through the batched inference path
// (pipeline.BatchClassifier on runner.ReplayBatched).
func batchedLog(t testing.TB, m *graph.Model, bug pipeline.Bug, resolver *ops.Resolver, workers, batch int, dev *device.Profile) *core.Log {
	t.Helper()
	l, err := Classification(m,
		pipeline.Options{Resolver: resolver, Bug: bug, Device: dev},
		testImages(t, testFrames),
		runner.Options{Workers: workers, BatchFrames: batch, MonitorOptions: monOpts}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// normalizeWallClock zeroes wall-clock latency values ("ns" unit), the only
// record content that legitimately differs between two runs — even two
// sequential ones.
func normalizeWallClock(l *core.Log) {
	for i := range l.Records {
		if l.Records[i].Kind == core.KindMetric && l.Records[i].Unit == "ns" {
			l.Records[i].Value = 0
		}
	}
}

func logBytes(t testing.TB, l *core.Log) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := l.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestBatchedReplayMatchesSequential is the batched determinism contract:
// for every (batch, workers) combination — including partial final batches
// and batches larger than the dataset — the merged log is byte-identical to
// a sequential single-pipeline replay after wall-clock normalization.
func TestBatchedReplayMatchesSequential(t *testing.T) {
	m := testModel(t, false)
	seq := sequentialLog(t, m, pipeline.BugNone, ops.NewReference(ops.Fixed()), nil)
	normalizeWallClock(seq)
	want := logBytes(t, seq)
	if len(want) == 0 {
		t.Fatal("sequential log empty")
	}
	for _, batch := range []int{1, 2, 8} {
		for _, workers := range []int{1, 4} {
			par := batchedLog(t, m, pipeline.BugNone, ops.NewReference(ops.Fixed()), workers, batch, nil)
			normalizeWallClock(par)
			if got := logBytes(t, par); !bytes.Equal(got, want) {
				t.Errorf("batch=%d workers=%d: merged log differs from sequential (%d vs %d bytes)",
					batch, workers, len(got), len(want))
			}
		}
	}
}

// TestBatchedReplayQuantizedMatchesSequential pins the quantized batched
// path — what `edgerun -quant` / `exray -quant` run by default. Rebatching,
// the memoized quant-kernel plans (multipliers, LUTs, requant closures) and
// the dequantizing per-layer capture must all reproduce the sequential
// telemetry byte for byte.
func TestBatchedReplayQuantizedMatchesSequential(t *testing.T) {
	m := testModel(t, true)
	for _, resolver := range []*ops.Resolver{ops.NewOptimized(ops.Historical()), ops.NewReference(ops.Fixed())} {
		seq := sequentialLog(t, m, pipeline.BugNone, resolver, nil)
		normalizeWallClock(seq)
		want := logBytes(t, seq)
		if len(want) == 0 {
			t.Fatal("sequential log empty")
		}
		for _, batch := range []int{2, 8} {
			par := batchedLog(t, m, pipeline.BugNone, resolver, 4, batch, nil)
			normalizeWallClock(par)
			if got := logBytes(t, par); !bytes.Equal(got, want) {
				t.Errorf("%s batch=%d: quantized merged log differs from sequential", resolver.Name(), batch)
			}
		}
	}
}

// TestBatchedReplayModeledLatencyIdentical repeats the determinism check
// with a device latency model attached. Modeled per-layer and per-frame
// latencies are NOT normalized away — the batched engine must project
// batch-1 node costs so these values match the sequential run exactly.
func TestBatchedReplayModeledLatencyIdentical(t *testing.T) {
	dev := device.Pixel4()
	m := testModel(t, false)
	seq := sequentialLog(t, m, pipeline.BugNone, ops.NewOptimized(ops.Fixed()), dev)
	normalizeWallClock(seq)
	want := logBytes(t, seq)

	modeledRecords := 0
	for _, r := range seq.Records {
		if r.Unit == "ns-modeled" || r.Key == core.KeyInferenceModeled {
			modeledRecords++
		}
	}
	if modeledRecords == 0 {
		t.Fatal("sequential log has no modeled-latency records; test would be vacuous")
	}

	for _, batch := range []int{2, 8} {
		par := batchedLog(t, m, pipeline.BugNone, ops.NewOptimized(ops.Fixed()), 4, batch, dev)
		normalizeWallClock(par)
		if got := logBytes(t, par); !bytes.Equal(got, want) {
			t.Errorf("batch=%d: modeled-latency log differs from sequential", batch)
		}
	}
}

// TestBatchedReplayWithBugMatchesSequential covers the injected-bug
// configuration the validation sweeps replay (preprocessing bug + per-layer
// capture): the batched path must reproduce the bugged telemetry too.
func TestBatchedReplayWithBugMatchesSequential(t *testing.T) {
	m := testModel(t, false)
	seq := sequentialLog(t, m, pipeline.BugNormalization, ops.NewOptimized(ops.Fixed()), nil)
	normalizeWallClock(seq)
	want := logBytes(t, seq)
	par := batchedLog(t, m, pipeline.BugNormalization, ops.NewOptimized(ops.Fixed()), 2, 4, nil)
	normalizeWallClock(par)
	if got := logBytes(t, par); !bytes.Equal(got, want) {
		t.Error("bugged batched replay differs from sequential")
	}
}

// TestBatchedDetectionMatchesSequential is the detection twin of the
// batched determinism contract: batched detector replays — two-output head
// decoded per element through interp.Batch.OutputAt — merge byte-identical
// to sequential frame-at-a-time detection, and report identical raw
// scores/boxes per frame.
func TestBatchedDetectionMatchesSequential(t *testing.T) {
	entry, err := zoo.Get("ssd-mini")
	if err != nil {
		t.Fatal(err)
	}
	m := entry.Mobile
	samples := datasets.SynthCOCO(6666, testFrames)
	images := make([]*imaging.Image, len(samples))
	for i := range samples {
		images[i] = samples[i].Image
	}

	// Sequential ground truth: one detector, one monitor, frames in order.
	mon := core.NewMonitor(monOpts...)
	det, err := pipeline.NewDetector(m, pipeline.Options{Resolver: ops.NewOptimized(ops.Fixed()), Monitor: mon})
	if err != nil {
		t.Fatal(err)
	}
	type pair struct{ scores, boxes []float32 }
	want := make([]pair, len(images))
	for i, im := range images {
		s, b, err := det.Detect(im)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = pair{scores: s.F, boxes: b.F}
	}
	seq := mon.Log()
	normalizeWallClock(seq)
	wantLog := logBytes(t, seq)
	if len(wantLog) == 0 {
		t.Fatal("sequential detection log empty")
	}

	for _, batch := range []int{2, 4, 8} {
		got := make([]pair, len(images))
		l, err := Detection(m, pipeline.Options{Resolver: ops.NewOptimized(ops.Fixed())}, images,
			runner.Options{Workers: 2, BatchFrames: batch, MonitorOptions: monOpts},
			func(i int, r DetectResult) error {
				got[i] = pair{scores: r.Scores.F, boxes: r.Boxes.F}
				return nil
			})
		if err != nil {
			t.Fatal(err)
		}
		normalizeWallClock(l)
		if gotLog := logBytes(t, l); !bytes.Equal(gotLog, wantLog) {
			t.Errorf("batch=%d: batched detection log differs from sequential (%d vs %d bytes)",
				batch, len(gotLog), len(wantLog))
		}
		for i := range want {
			if !floatsEqual(got[i].scores, want[i].scores) || !floatsEqual(got[i].boxes, want[i].boxes) {
				t.Errorf("batch=%d frame %d: batched scores/boxes differ from sequential", batch, i)
			}
		}
	}
}

func floatsEqual(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestClassificationUninstrumented pins the accuracy-eval contract: nil
// MonitorOptions replays without telemetry and still reports per-frame
// predictions identical to the instrumented sequential run.
func TestClassificationUninstrumented(t *testing.T) {
	entry, err := zoo.Get("mobilenetv2-mini")
	if err != nil {
		t.Fatal(err)
	}
	samples := datasets.SynthImageNet(5555, testFrames)
	images := make([]*imaging.Image, len(samples))
	labels := make([]int, len(samples))
	for i := range samples {
		images[i] = samples[i].Image
		labels[i] = samples[i].Label
	}

	cl, err := pipeline.NewClassifier(entry.Mobile, pipeline.Options{Resolver: ops.NewOptimized(ops.Fixed())})
	if err != nil {
		t.Fatal(err)
	}
	wantPreds := make([]int, len(images))
	for i, im := range images {
		if wantPreds[i], _, err = cl.Classify(im); err != nil {
			t.Fatal(err)
		}
	}

	for _, batch := range []int{1, 4} {
		preds := make([]int, len(images))
		l, err := Classification(entry.Mobile, pipeline.Options{Resolver: ops.NewOptimized(ops.Fixed())}, images,
			runner.Options{Workers: 4, BatchFrames: batch},
			func(i int, r ClassifyResult) error {
				preds[i] = r.Pred
				return nil
			})
		if err != nil {
			t.Fatal(err)
		}
		if len(l.Records) != 0 {
			t.Errorf("batch=%d: uninstrumented replay logged %d records", batch, len(l.Records))
		}
		for i := range preds {
			if preds[i] != wantPreds[i] {
				t.Errorf("batch=%d frame %d: pred %d, sequential %d", batch, i, preds[i], wantPreds[i])
			}
		}
		if acc, err := metrics.Top1(preds, labels); err != nil || acc < 0 {
			t.Errorf("batch=%d: Top1 = %v, %v", batch, acc, err)
		}
	}
}
