// Package replay binds the instrumented pipelines to the parallel replay
// engine: one call replays a dataset through per-worker pipeline replicas —
// frame-at-a-time or batched — and returns the deterministically merged
// telemetry log. The experiment sweeps and the CLIs (edgerun, refrun, exray)
// all drive dataset replays through this package, so batching and worker
// policy live in exactly one place.
package replay

import (
	"fmt"
	"time"

	"mlexray/internal/core"
	"mlexray/internal/datasets"
	"mlexray/internal/graph"
	"mlexray/internal/imaging"
	"mlexray/internal/pipeline"
	"mlexray/internal/runner"
	"mlexray/internal/tensor"
)

// ValidateFlags rejects nonsensical replay sizing from the CLIs' shared
// -frames/-parallel/-batch flags up front, with a clear message instead of
// a hang or a panic deeper in the engine. All three replay CLIs (edgerun,
// refrun, exray) use the same flag names, so the messages live here once.
func ValidateFlags(frames, parallel, batch int) error {
	if frames < 1 {
		return fmt.Errorf("-frames must be positive (got %d)", frames)
	}
	if parallel < 0 {
		return fmt.Errorf("-parallel must be >= 0 (0 = all cores; got %d)", parallel)
	}
	if batch < 1 {
		return fmt.Errorf("-batch must be positive (got %d)", batch)
	}
	return nil
}

// Images projects an image-sample set to the replay input — the shared
// sample-to-frames adapter for the CLIs, sweeps and tests.
func Images(samples []datasets.ImageSample) []*imaging.Image {
	images := make([]*imaging.Image, len(samples))
	for i := range samples {
		images[i] = samples[i].Image
	}
	return images
}

// ClassifyResult is the per-frame outcome a classification replay reports to
// its observer callback.
type ClassifyResult struct {
	// Pred is the predicted class (argmax of the model output).
	Pred int
	// Modeled is the device-model latency projection for the frame's
	// invoke; zero without a device profile.
	Modeled time.Duration
}

// Classification replays images through classifier replicas on the parallel
// replay engine and returns the merged telemetry log.
//
//   - ropts.BatchFrames > 1 selects the batched inference path: each worker
//     owns a pipeline.BatchClassifier replica and runs whole frame ranges
//     through single batched invokes. Otherwise workers run frame-at-a-time
//     Classifier replicas. Merged telemetry is byte-identical either way
//     (modulo wall-clock latency values).
//   - ropts.MonitorOptions nil replays uninstrumented (accuracy-eval mode):
//     replicas carry no monitor, so the hot path pays no telemetry cost and
//     the returned log is empty. Any non-nil MonitorOptions (even empty)
//     instruments the replicas with shard monitors.
//   - onFrame, when non-nil, observes every frame's result. It runs on
//     worker goroutines: implementations must only write frame-indexed
//     slots or otherwise synchronise.
//
// popts.Monitor is ignored — replicas always use their shard monitor.
func Classification(m *graph.Model, popts pipeline.Options, images []*imaging.Image,
	ropts runner.Options, onFrame func(frame int, r ClassifyResult) error) (*core.Log, error) {
	popts.Monitor = nil
	instrumented := ropts.MonitorOptions != nil

	if ropts.BatchFrames > 1 {
		base, err := pipeline.NewBatchClassifier(m, ropts.BatchFrames, popts)
		if err != nil {
			return nil, err
		}
		return runner.ReplayBatched(len(images), func(mon *core.Monitor) (runner.ProcessBatchFunc, error) {
			var pmon *core.Monitor
			if instrumented {
				pmon = mon
			}
			bc, err := base.Clone(pmon)
			if err != nil {
				return nil, err
			}
			return func(start, end int) error {
				preds, err := bc.ClassifyBatch(images[start:end])
				if err != nil {
					return err
				}
				if onFrame != nil {
					modeled := bc.Interpreter().FrameStats().Modeled
					for j, p := range preds {
						if err := onFrame(start+j, ClassifyResult{Pred: p, Modeled: modeled}); err != nil {
							return err
						}
					}
				}
				return nil
			}, nil
		}, ropts)
	}

	base, err := pipeline.NewClassifier(m, popts)
	if err != nil {
		return nil, err
	}
	return runner.Replay(len(images), func(mon *core.Monitor) (runner.ProcessFunc, error) {
		var pmon *core.Monitor
		if instrumented {
			pmon = mon
		}
		cl, err := base.Clone(pmon)
		if err != nil {
			return nil, err
		}
		return func(i int) error {
			pred, _, err := cl.Classify(images[i])
			if err != nil {
				return err
			}
			if onFrame != nil {
				return onFrame(i, ClassifyResult{Pred: pred, Modeled: cl.Interpreter().LastInvokeStats().Modeled})
			}
			return nil
		}, nil
	}, ropts)
}

// DetectResult is the per-frame outcome a detection replay reports to its
// observer callback: the raw class scores [A, C] and box offsets [A, 4]
// (postprocessing — decode/NMS — stays with the caller).
type DetectResult struct {
	Scores *tensor.Tensor
	Boxes  *tensor.Tensor
}

// Detection replays images through detector replicas on the parallel replay
// engine and returns the merged telemetry log. Like Classification,
// ropts.BatchFrames > 1 selects the batched inference path — each worker
// owns a pipeline.BatchDetector replica and decodes the two-output head per
// element through interp.Batch.OutputAt — and nil MonitorOptions replays
// uninstrumented. onFrame runs on worker goroutines; implementations must
// only write frame-indexed slots or otherwise synchronise.
func Detection(m *graph.Model, popts pipeline.Options, images []*imaging.Image,
	ropts runner.Options, onFrame func(frame int, r DetectResult) error) (*core.Log, error) {
	popts.Monitor = nil
	instrumented := ropts.MonitorOptions != nil

	if ropts.BatchFrames > 1 {
		// Pipelines construct directly inside the worker factory (no Clone
		// template): factory errors still surface before any goroutine
		// starts, and no throwaway interpreter arena is allocated.
		return runner.ReplayBatched(len(images), func(mon *core.Monitor) (runner.ProcessBatchFunc, error) {
			o := popts
			if instrumented {
				o.Monitor = mon
			}
			bd, err := pipeline.NewBatchDetector(m, ropts.BatchFrames, o)
			if err != nil {
				return nil, err
			}
			return func(start, end int) error {
				scores, boxes, err := bd.DetectBatch(images[start:end])
				if err != nil {
					return err
				}
				if onFrame != nil {
					for j := range scores {
						if err := onFrame(start+j, DetectResult{Scores: scores[j], Boxes: boxes[j]}); err != nil {
							return err
						}
					}
				}
				return nil
			}, nil
		}, ropts)
	}

	return runner.Replay(len(images), func(mon *core.Monitor) (runner.ProcessFunc, error) {
		o := popts
		if instrumented {
			o.Monitor = mon
		}
		det, err := pipeline.NewDetector(m, o)
		if err != nil {
			return nil, err
		}
		return func(i int) error {
			scores, boxes, err := det.Detect(images[i])
			if err != nil {
				return err
			}
			if onFrame != nil {
				return onFrame(i, DetectResult{Scores: scores, Boxes: boxes})
			}
			return nil
		}, nil
	}, ropts)
}

// FleetDetection replays images across a heterogeneous simulated device
// fleet through detector replicas — the detection binding of the
// task-agnostic fleet scheduler, mirroring FleetClassification: the shard
// policy splits the frame range, each device's workers run its shard through
// pipeline.BatchDetector (spec.BatchFrames > 1) or pipeline.Detector
// replicas carrying the device's latency profile, and per-device shard logs
// land in FleetResult.DeviceLogs and the per-device sinks. perDevice
// customizes one device's pipeline options (the device-local bug hook); nil
// fleet MonitorOptions replays uninstrumented; popts.Monitor is ignored.
func FleetDetection(m *graph.Model, popts pipeline.Options, images []*imaging.Image,
	fleet *runner.Fleet, perDevice func(dev int, spec runner.DeviceSpec, o *pipeline.Options)) (*runner.FleetResult, error) {
	instrumented := fleet.MonitorOptions != nil
	return fleet.ReplayBatched(len(images), func(dev int, spec runner.DeviceSpec, mon *core.Monitor) (runner.ProcessBatchFunc, error) {
		o := popts
		o.Device = spec.Profile
		if perDevice != nil {
			perDevice(dev, spec, &o)
		}
		o.Monitor = nil
		if instrumented {
			o.Monitor = mon
		}
		if spec.BatchFrames > 1 {
			bd, err := pipeline.NewBatchDetector(m, spec.BatchFrames, o)
			if err != nil {
				return nil, err
			}
			return func(start, end int) error {
				_, _, err := bd.DetectBatch(images[start:end])
				return err
			}, nil
		}
		det, err := pipeline.NewDetector(m, o)
		if err != nil {
			return nil, err
		}
		return runner.PerFrame(mon, func(i int) error {
			_, _, err := det.Detect(images[i])
			return err
		}), nil
	})
}

// FleetClassification replays images across a heterogeneous simulated
// device fleet: the fleet's shard policy splits the frame range across its
// DeviceSpecs, and every device runs its shard through classifier replicas
// carrying that device's latency profile — batched (pipeline.
// BatchClassifier) when the spec's BatchFrames > 1, frame at a time
// otherwise. Per-device shard logs land in FleetResult.DeviceLogs (and the
// per-device sinks); the merged log keeps the sequential-order determinism
// contract of Classification.
//
// perDevice, when non-nil, customizes one device's pipeline options after
// the device profile is attached — the hook for injecting a device-local
// configuration (or bug) under test. As with Classification, the fleet's
// MonitorOptions nil replays uninstrumented, and popts.Monitor is ignored.
func FleetClassification(m *graph.Model, popts pipeline.Options, images []*imaging.Image,
	fleet *runner.Fleet, perDevice func(dev int, spec runner.DeviceSpec, o *pipeline.Options)) (*runner.FleetResult, error) {
	instrumented := fleet.MonitorOptions != nil
	return fleet.ReplayBatched(len(images), func(dev int, spec runner.DeviceSpec, mon *core.Monitor) (runner.ProcessBatchFunc, error) {
		o := popts
		o.Device = spec.Profile
		if perDevice != nil {
			perDevice(dev, spec, &o)
		}
		o.Monitor = nil
		if instrumented {
			o.Monitor = mon
		}
		if spec.BatchFrames > 1 {
			bc, err := pipeline.NewBatchClassifier(m, spec.BatchFrames, o)
			if err != nil {
				return nil, err
			}
			return func(start, end int) error {
				_, err := bc.ClassifyBatch(images[start:end])
				return err
			}, nil
		}
		cl, err := pipeline.NewClassifier(m, o)
		if err != nil {
			return nil, err
		}
		return runner.PerFrame(mon, func(i int) error {
			_, _, err := cl.Classify(images[i])
			return err
		}), nil
	})
}
