// Package replay binds the instrumented pipelines to the parallel replay
// engine: one call replays a dataset through per-worker pipeline replicas —
// frame-at-a-time or batched — and returns the deterministically merged
// telemetry log. The experiment sweeps and the CLIs (edgerun, refrun, exray)
// all drive dataset replays through this package, so batching and worker
// policy live in exactly one place.
package replay

import (
	"time"

	"mlexray/internal/core"
	"mlexray/internal/datasets"
	"mlexray/internal/graph"
	"mlexray/internal/imaging"
	"mlexray/internal/pipeline"
	"mlexray/internal/runner"
)

// Images projects an image-sample set to the replay input — the shared
// sample-to-frames adapter for the CLIs, sweeps and tests.
func Images(samples []datasets.ImageSample) []*imaging.Image {
	images := make([]*imaging.Image, len(samples))
	for i := range samples {
		images[i] = samples[i].Image
	}
	return images
}

// ClassifyResult is the per-frame outcome a classification replay reports to
// its observer callback.
type ClassifyResult struct {
	// Pred is the predicted class (argmax of the model output).
	Pred int
	// Modeled is the device-model latency projection for the frame's
	// invoke; zero without a device profile.
	Modeled time.Duration
}

// Classification replays images through classifier replicas on the parallel
// replay engine and returns the merged telemetry log.
//
//   - ropts.BatchFrames > 1 selects the batched inference path: each worker
//     owns a pipeline.BatchClassifier replica and runs whole frame ranges
//     through single batched invokes. Otherwise workers run frame-at-a-time
//     Classifier replicas. Merged telemetry is byte-identical either way
//     (modulo wall-clock latency values).
//   - ropts.MonitorOptions nil replays uninstrumented (accuracy-eval mode):
//     replicas carry no monitor, so the hot path pays no telemetry cost and
//     the returned log is empty. Any non-nil MonitorOptions (even empty)
//     instruments the replicas with shard monitors.
//   - onFrame, when non-nil, observes every frame's result. It runs on
//     worker goroutines: implementations must only write frame-indexed
//     slots or otherwise synchronise.
//
// popts.Monitor is ignored — replicas always use their shard monitor.
func Classification(m *graph.Model, popts pipeline.Options, images []*imaging.Image,
	ropts runner.Options, onFrame func(frame int, r ClassifyResult) error) (*core.Log, error) {
	popts.Monitor = nil
	instrumented := ropts.MonitorOptions != nil

	if ropts.BatchFrames > 1 {
		base, err := pipeline.NewBatchClassifier(m, ropts.BatchFrames, popts)
		if err != nil {
			return nil, err
		}
		return runner.ReplayBatched(len(images), func(mon *core.Monitor) (runner.ProcessBatchFunc, error) {
			var pmon *core.Monitor
			if instrumented {
				pmon = mon
			}
			bc, err := base.Clone(pmon)
			if err != nil {
				return nil, err
			}
			return func(start, end int) error {
				preds, err := bc.ClassifyBatch(images[start:end])
				if err != nil {
					return err
				}
				if onFrame != nil {
					modeled := bc.Interpreter().FrameStats().Modeled
					for j, p := range preds {
						if err := onFrame(start+j, ClassifyResult{Pred: p, Modeled: modeled}); err != nil {
							return err
						}
					}
				}
				return nil
			}, nil
		}, ropts)
	}

	base, err := pipeline.NewClassifier(m, popts)
	if err != nil {
		return nil, err
	}
	return runner.Replay(len(images), func(mon *core.Monitor) (runner.ProcessFunc, error) {
		var pmon *core.Monitor
		if instrumented {
			pmon = mon
		}
		cl, err := base.Clone(pmon)
		if err != nil {
			return nil, err
		}
		return func(i int) error {
			pred, _, err := cl.Classify(images[i])
			if err != nil {
				return err
			}
			if onFrame != nil {
				return onFrame(i, ClassifyResult{Pred: pred, Modeled: cl.Interpreter().LastInvokeStats().Modeled})
			}
			return nil
		}, nil
	}, ropts)
}
