package replay

import (
	"fmt"
	"testing"

	"mlexray/internal/interp"
	"mlexray/internal/ops"
	"mlexray/internal/pipeline"
	"mlexray/internal/runner"
	"mlexray/internal/tensor"
	"mlexray/internal/zoo"
)

// The replay-engine benchmarks: end-to-end frames/sec of the batched
// parallel engine at several batch sizes, and the interpreter-only invoke
// cost (run with -benchmem: steady-state Invoke is allocation-free).

// benchFrames is long enough that per-replica construction (the rebatched
// interpreter arena grows with the batch size) amortizes the way it does in
// real dataset replays.
const benchFrames = 256

// benchReplay replays the MobileNet-v2 workload uninstrumented (the
// accuracy-eval configuration — pure pipeline throughput, no telemetry
// encoding on the hot path).
func benchReplay(b *testing.B, workers, batch int) {
	b.Helper()
	entry, err := zoo.Get("mobilenetv2-mini")
	if err != nil {
		b.Fatal(err)
	}
	images := testImages(b, benchFrames)
	popts := pipeline.Options{Resolver: ops.NewOptimized(ops.Fixed())}
	ropts := runner.Options{Workers: workers, BatchFrames: batch}
	b.ReportMetric(float64(benchFrames), "frames/op")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Classification(entry.Mobile, popts, images, ropts, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(benchFrames), "ns/frame")
}

// BenchmarkReplayBatch measures the batched engine on a single worker, so
// the batch-size axis is isolated from parallel speedup.
func BenchmarkReplayBatch(b *testing.B) {
	for _, batch := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			benchReplay(b, 1, batch)
		})
	}
}

// BenchmarkReplayBatchParallel composes batching with the worker pool.
func BenchmarkReplayBatchParallel(b *testing.B) {
	for _, batch := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			benchReplay(b, 0, batch)
		})
	}
}

// BenchmarkInvoke measures the interpreter hot loop alone on the
// optimized-resolver MobileNet path. ns/frame is the per-frame cost (the
// batch=N invoke runs N frames); allocs/op must be 0 in steady state.
func BenchmarkInvoke(b *testing.B) {
	entry, err := zoo.Get("mobilenetv2-mini")
	if err != nil {
		b.Fatal(err)
	}
	m := entry.Mobile
	in := tensor.New(tensor.F32, 1, m.Meta.InputH, m.Meta.InputW, m.Meta.InputC)
	in.Fill(0.3)

	b.Run("batch=1", func(b *testing.B) {
		ip, err := interp.New(m, ops.NewOptimized(ops.Fixed()))
		if err != nil {
			b.Fatal(err)
		}
		if err := ip.SetInput(0, in); err != nil {
			b.Fatal(err)
		}
		if err := ip.Invoke(); err != nil { // warm kernel caches
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := ip.Invoke(); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/frame")
	})
	for _, batch := range []int{8, 32} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			bp, err := interp.NewBatch(m, batch, ops.NewOptimized(ops.Fixed()))
			if err != nil {
				b.Fatal(err)
			}
			for e := 0; e < batch; e++ {
				if err := bp.SetInputElem(0, e, in); err != nil {
					b.Fatal(err)
				}
			}
			if err := bp.Invoke(); err != nil { // warm kernel caches
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := bp.Invoke(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(batch), "ns/frame")
		})
	}
}
