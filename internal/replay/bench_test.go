package replay

import (
	"fmt"
	"io"
	"net/http/httptest"
	"testing"

	"mlexray/internal/core"
	"mlexray/internal/device"
	"mlexray/internal/ingest"
	"mlexray/internal/interp"
	"mlexray/internal/ops"
	"mlexray/internal/pipeline"
	"mlexray/internal/runner"
	"mlexray/internal/tensor"
	"mlexray/internal/zoo"
)

// The replay-engine benchmarks: end-to-end frames/sec of the batched
// parallel engine at several batch sizes, and the interpreter-only invoke
// cost (run with -benchmem: steady-state Invoke is allocation-free).

// benchFrames is long enough that per-replica construction (the rebatched
// interpreter arena grows with the batch size) amortizes the way it does in
// real dataset replays.
const benchFrames = 256

// benchReplay replays the MobileNet-v2 workload uninstrumented (the
// accuracy-eval configuration — pure pipeline throughput, no telemetry
// encoding on the hot path).
func benchReplay(b *testing.B, workers, batch int) {
	b.Helper()
	entry, err := zoo.Get("mobilenetv2-mini")
	if err != nil {
		b.Fatal(err)
	}
	images := testImages(b, benchFrames)
	popts := pipeline.Options{Resolver: ops.NewOptimized(ops.Fixed())}
	ropts := runner.Options{Workers: workers, BatchFrames: batch}
	b.ReportMetric(float64(benchFrames), "frames/op")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Classification(entry.Mobile, popts, images, ropts, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(benchFrames), "ns/frame")
}

// BenchmarkReplayBatch measures the batched engine on a single worker, so
// the batch-size axis is isolated from parallel speedup.
func BenchmarkReplayBatch(b *testing.B) {
	for _, batch := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			benchReplay(b, 1, batch)
		})
	}
}

// BenchmarkReplayBatchParallel composes batching with the worker pool.
func BenchmarkReplayBatchParallel(b *testing.B) {
	for _, batch := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			benchReplay(b, 0, batch)
		})
	}
}

// benchReplayFleet measures the fleet scheduler's end-to-end throughput on
// a homogeneous fleet of ndev single-worker batched devices (uninstrumented,
// like benchReplay, so the scheduler and not the telemetry encode is the
// axis). ns/frame at 1, 2 and 4 devices is the scaling datapoint
// BENCH_replay.json tracks as replay_fleet_devN.
func benchReplayFleet(b *testing.B, ndev int) {
	b.Helper()
	entry, err := zoo.Get("mobilenetv2-mini")
	if err != nil {
		b.Fatal(err)
	}
	images := testImages(b, benchFrames)
	popts := pipeline.Options{Resolver: ops.NewOptimized(ops.Fixed())}
	b.ReportMetric(float64(benchFrames), "frames/op")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		devs := make([]runner.DeviceSpec, ndev)
		for d := range devs {
			devs[d] = runner.DeviceSpec{Profile: device.Pixel4(), Workers: 1, BatchFrames: 8}
		}
		fleet := &runner.Fleet{Devices: devs, Policy: runner.Contiguous{}}
		if _, err := FleetClassification(entry.Mobile, popts, images, fleet, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(benchFrames), "ns/frame")
}

// BenchmarkReplayFleet scales the simulated device count: each device runs
// one worker, so wall-clock throughput should improve with the fleet size
// on a multi-core host.
func BenchmarkReplayFleet(b *testing.B) {
	for _, ndev := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("devices=%d", ndev), func(b *testing.B) {
			benchReplayFleet(b, ndev)
		})
	}
}

// fullCaptureFrames sizes the full-capture benchmarks: per-layer tensor
// telemetry is megabytes per frame, so the encode path dominates long before
// the 256-frame accuracy-eval figure.
const fullCaptureFrames = 64

// benchReplayFullCapture replays with full per-layer capture streamed
// through a log sink — the edgerun/refrun configuration — and reports
// ns/frame and serialized bytes/frame for the chosen encoding. Workers
// default to all cores, as the CLIs do: compute parallelizes while the
// collector serializes encoding, so the codec is the bottleneck this
// benchmark isolates.
func benchReplayFullCapture(b *testing.B, format core.LogFormat) {
	benchReplayFullCaptureSink(b, func() core.LogSink {
		sink, err := core.NewLogSink(io.Discard, format)
		if err != nil {
			b.Fatal(err)
		}
		return sink
	})
}

// serialCollectorSink hides the JSONL sink's FramePreEncoder capability so
// the replay collector serializes every record itself — the pre-parallel-
// encode behavior the worker pre-marshal stage is measured against.
type serialCollectorSink struct{ core.LogSink }

// benchReplayFullCaptureSerialJSONL is the JSONL full-capture benchmark with
// the parallel encode stage disabled.
func benchReplayFullCaptureSerialJSONL(b *testing.B) {
	benchReplayFullCaptureSink(b, func() core.LogSink {
		return serialCollectorSink{core.NewJSONLSink(io.Discard)}
	})
}

func benchReplayFullCaptureSink(b *testing.B, mkSink func() core.LogSink) {
	b.Helper()
	entry, err := zoo.Get("mobilenetv2-mini")
	if err != nil {
		b.Fatal(err)
	}
	images := testImages(b, fullCaptureFrames)
	popts := pipeline.Options{Resolver: ops.NewOptimized(ops.Fixed())}
	b.ReportMetric(float64(fullCaptureFrames), "frames/op")
	var bytesPerFrame float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink := mkSink()
		ropts := runner.Options{
			BatchFrames:    8,
			MonitorOptions: []core.MonitorOption{core.WithCaptureMode(core.CaptureFull), core.WithPerLayer(true)},
			Sink:           sink,
			DiscardLog:     true,
		}
		if _, err := Classification(entry.Mobile, popts, images, ropts, nil); err != nil {
			b.Fatal(err)
		}
		if err := sink.Flush(); err != nil {
			b.Fatal(err)
		}
		bytesPerFrame = float64(sink.Bytes()) / float64(fullCaptureFrames)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(fullCaptureFrames), "ns/frame")
	b.ReportMetric(bytesPerFrame, "log-bytes/frame")
}

// BenchmarkReplayFullCapture compares the two log encodings under full
// per-layer capture — the encoding datapoint of the perf trajectory — plus
// the JSONL path with its parallel encode stage disabled, isolating what
// the worker pre-marshal stage buys on multi-core hosts.
func BenchmarkReplayFullCapture(b *testing.B) {
	for _, format := range []core.LogFormat{core.FormatJSONL, core.FormatBinary} {
		b.Run(format.String(), func(b *testing.B) {
			benchReplayFullCapture(b, format)
		})
	}
	b.Run("jsonl-serial-collector", benchReplayFullCaptureSerialJSONL)
}

// ingestFrames sizes the upload benchmark (full-capture streams are
// megabytes per frame; transport and incremental validation dominate).
const ingestFrames = 32

// benchIngestUpload measures the device→collector hot path: one
// pre-captured full-capture stream per iteration encodes (binary),
// optionally gzips, POSTs to a live in-process collector, and validates
// incrementally against the same log as reference. Reports ns/frame,
// frames/sec and wire bytes/frame. instrumented toggles the collector's
// self-telemetry (metrics + tracing); the off state is the baseline the
// instrumentation-overhead pin is measured against.
func benchIngestUpload(b *testing.B, gz bool, dataDir string, instrumented bool) {
	b.Helper()
	entry, err := zoo.Get("mobilenetv2-mini")
	if err != nil {
		b.Fatal(err)
	}
	images := testImages(b, ingestFrames)
	log, err := Classification(entry.Mobile,
		pipeline.Options{Resolver: ops.NewOptimized(ops.Fixed())}, images,
		runner.Options{
			BatchFrames:    8,
			MonitorOptions: []core.MonitorOption{core.WithCaptureMode(core.CaptureFull), core.WithPerLayer(true)},
		}, nil)
	if err != nil {
		b.Fatal(err)
	}
	var groups [][]core.Record
	start := 0
	for start < len(log.Records) {
		end := start
		for end < len(log.Records) && log.Records[end].Frame == log.Records[start].Frame {
			end++
		}
		groups = append(groups, log.Records[start:end])
		start = end
	}
	srv, err := ingest.NewServer(ingest.ServerOptions{Ref: log, DataDir: dataDir, DisableMetrics: !instrumented})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var wirePerFrame float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink, err := ingest.NewRemoteSink(ingest.SinkOptions{
			URL: ts.URL, Device: fmt.Sprintf("bench-%d", i),
			Format: core.FormatBinary, Gzip: gz,
		})
		if err != nil {
			b.Fatal(err)
		}
		for g, recs := range groups {
			if err := sink.WriteFrame(g, recs); err != nil {
				b.Fatal(err)
			}
		}
		if err := sink.Flush(); err != nil {
			b.Fatal(err)
		}
		wirePerFrame = float64(sink.Bytes()) / float64(ingestFrames)
	}
	b.StopTimer()
	nsPerFrame := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / float64(ingestFrames)
	b.ReportMetric(nsPerFrame, "ns/frame")
	b.ReportMetric(1e9/nsPerFrame, "frames/sec")
	b.ReportMetric(wirePerFrame, "wire-bytes/frame")
}

// BenchmarkIngestUpload measures collector ingestion throughput — binary
// chunks with and without gzip, plus the durable (write-ahead-logged)
// collector — the ingest_binary[_gzip|_durable] datapoints of
// BENCH_replay.json. The durable variant prices the fsync-before-ack
// barrier against the in-memory binary baseline, and the instrumented
// variant prices self-telemetry (metrics + tracing) against the bare
// collector — pinned under 3% in the artifact test.
func BenchmarkIngestUpload(b *testing.B) {
	b.Run("binary", func(b *testing.B) { benchIngestUpload(b, false, "", false) })
	b.Run("binary-gzip", func(b *testing.B) { benchIngestUpload(b, true, "", false) })
	b.Run("binary-durable", func(b *testing.B) { benchIngestUpload(b, false, b.TempDir(), false) })
	b.Run("binary-instrumented", func(b *testing.B) { benchIngestUpload(b, false, "", true) })
}

// benchInvokeBackend measures the interpreter hot loop under one kernel
// backend. quant selects the post-training full-integer model (the int8
// packed path); allocs/op must be 0 in steady state for every backend.
func benchInvokeBackend(b *testing.B, backend ops.Backend, quant bool) {
	b.Helper()
	entry, err := zoo.Get("mobilenetv2-mini")
	if err != nil {
		b.Fatal(err)
	}
	m := entry.Mobile
	if quant {
		m = entry.Quant
	}
	in := tensor.New(tensor.F32, 1, m.Meta.InputH, m.Meta.InputW, m.Meta.InputC)
	in.Fill(0.3)
	ip, err := interp.New(m, ops.NewOptimized(ops.Fixed()), interp.WithBackend(backend))
	if err != nil {
		b.Fatal(err)
	}
	if err := ip.SetInput(0, in); err != nil {
		b.Fatal(err)
	}
	if err := ip.Invoke(); err != nil { // warm kernel caches (packed weights)
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ip.Invoke(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/frame")
}

// BenchmarkInvokeGemm races the GEMM kernel backends on the interpreter hot
// loop: the float model under reference/blocked/tiled, and the quantized
// model under blocked vs the tiled int8 packed path. These configurations
// feed the invoke_gemm_* entries of BENCH_replay.json.
func BenchmarkInvokeGemm(b *testing.B) {
	for _, backend := range ops.Backends() {
		b.Run("float/"+backend.String(), func(b *testing.B) {
			benchInvokeBackend(b, backend, false)
		})
	}
	for _, backend := range []ops.Backend{ops.BackendBlocked, ops.BackendTiled} {
		b.Run("quant/"+backend.String(), func(b *testing.B) {
			benchInvokeBackend(b, backend, true)
		})
	}
}

// BenchmarkInvoke measures the interpreter hot loop alone on the
// optimized-resolver MobileNet path. ns/frame is the per-frame cost (the
// batch=N invoke runs N frames); allocs/op must be 0 in steady state.
func BenchmarkInvoke(b *testing.B) {
	entry, err := zoo.Get("mobilenetv2-mini")
	if err != nil {
		b.Fatal(err)
	}
	m := entry.Mobile
	in := tensor.New(tensor.F32, 1, m.Meta.InputH, m.Meta.InputW, m.Meta.InputC)
	in.Fill(0.3)

	b.Run("batch=1", func(b *testing.B) {
		ip, err := interp.New(m, ops.NewOptimized(ops.Fixed()))
		if err != nil {
			b.Fatal(err)
		}
		if err := ip.SetInput(0, in); err != nil {
			b.Fatal(err)
		}
		if err := ip.Invoke(); err != nil { // warm kernel caches
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := ip.Invoke(); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/frame")
	})
	for _, batch := range []int{8, 32} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			bp, err := interp.NewBatch(m, batch, ops.NewOptimized(ops.Fixed()))
			if err != nil {
				b.Fatal(err)
			}
			for e := 0; e < batch; e++ {
				if err := bp.SetInputElem(0, e, in); err != nil {
					b.Fatal(err)
				}
			}
			if err := bp.Invoke(); err != nil { // warm kernel caches
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := bp.Invoke(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(batch), "ns/frame")
		})
	}
}
