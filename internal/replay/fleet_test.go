package replay

import (
	"bytes"
	"strings"
	"testing"

	"mlexray/internal/core"
	"mlexray/internal/datasets"
	"mlexray/internal/device"
	"mlexray/internal/imaging"
	"mlexray/internal/ops"
	"mlexray/internal/pipeline"
	"mlexray/internal/runner"
	"mlexray/internal/zoo"
)

// fleetMonOpts is the offline-validation capture configuration fleet
// validation expects: full tensors plus per-layer records for drift rollups.
var fleetMonOpts = []core.MonitorOption{core.WithCaptureMode(core.CaptureFull), core.WithPerLayer(true)}

// TestFleetValidateFlagsBuggedDevice is the fleet-validation acceptance pin:
// a preprocessing bug injected into exactly one device of a three-device
// fleet must flag that device — and only that device — in the FleetReport,
// with its divergent frames confined to its own shard.
func TestFleetValidateFlagsBuggedDevice(t *testing.T) {
	const frames = 24
	const bugged = 0 // the Pixel4 slot — the largest shard — carries the bug
	entry, err := zoo.Get("mobilenetv2-mini")
	if err != nil {
		t.Fatal(err)
	}
	images := Images(datasets.SynthImageNet(5555, frames))

	fleet := &runner.Fleet{
		Devices: []runner.DeviceSpec{
			{Profile: device.Pixel4(), Workers: 2, BatchFrames: 4},
			{Profile: device.Pixel3(), Workers: 1, BatchFrames: 2},
			{Profile: device.EmulatorX86(), Workers: 1, BatchFrames: 2},
		},
		Policy:         runner.RoundRobin{},
		MonitorOptions: fleetMonOpts,
	}
	res, err := FleetClassification(entry.Mobile, pipeline.Options{Resolver: ops.NewOptimized(ops.Fixed())},
		images, fleet, func(dev int, spec runner.DeviceSpec, o *pipeline.Options) {
			if dev == bugged {
				o.Bug = pipeline.BugNormalization
			}
		})
	if err != nil {
		t.Fatal(err)
	}

	// Reference: the correct pipeline over the full frame range.
	ref, err := Classification(entry.Mobile, pipeline.Options{Resolver: ops.NewReference(ops.Fixed())},
		images, runner.Options{MonitorOptions: fleetMonOpts}, nil)
	if err != nil {
		t.Fatal(err)
	}

	shards := make([]core.DeviceShardLog, len(fleet.Devices))
	for d, spec := range fleet.Devices {
		shards[d] = core.DeviceShardLog{Device: spec.Name(), Log: res.DeviceLogs[d]}
	}
	rep, err := core.FleetValidate(shards, ref, core.DefaultValidateOptions())
	if err != nil {
		t.Fatal(err)
	}

	if len(rep.Flagged) != 1 || rep.Flagged[0] != fleet.Devices[bugged].Name() {
		t.Fatalf("flagged devices = %v, want exactly [%s]", rep.Flagged, fleet.Devices[bugged].Name())
	}
	owner := map[int]int{} // 1-based frame tag -> device
	for d, ranges := range res.Assignment {
		for _, r := range ranges {
			for g := r.Start; g < r.End; g++ {
				owner[g+1] = d
			}
		}
	}
	for d, dr := range rep.Devices {
		if (d == bugged) != dr.Flagged {
			t.Errorf("device %s flagged=%v, want %v", dr.Device, dr.Flagged, d == bugged)
		}
		if d == bugged {
			if dr.OutputAgreement >= 0.98 {
				t.Errorf("bugged device agreement %.2f, want < 0.98", dr.OutputAgreement)
			}
			if len(dr.Divergent) == 0 {
				t.Error("bugged device reports no divergent frames")
			}
			for _, f := range dr.Divergent {
				if owner[f] != bugged {
					t.Errorf("divergent frame %d owned by device %d, not the bugged device", f, owner[f])
				}
			}
			if dr.Layers == 0 || dr.MeanNRMSE <= 0 {
				t.Errorf("bugged device drift rollup empty: layers=%d meanNRMSE=%f", dr.Layers, dr.MeanNRMSE)
			}
		} else if dr.OutputAgreement < 0.98 {
			t.Errorf("healthy device %s agreement %.2f", dr.Device, dr.OutputAgreement)
		}
		if dr.MeanModeledNs <= 0 {
			t.Errorf("device %s has no modeled-latency rollup", dr.Device)
		}
	}
	if rep.FleetAgreement >= 1 {
		t.Errorf("fleet agreement %.2f should reflect the bugged shard", rep.FleetAgreement)
	}
	if len(rep.DivergentFrames) == 0 {
		t.Error("no cross-device divergent frames reported")
	}

	var buf bytes.Buffer
	rep.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "DIVERGES") || !strings.Contains(out, fleet.Devices[bugged].Name()) {
		t.Errorf("rendered report misses the flagged device:\n%s", out)
	}
}

// TestFleetValidateHealthyFleet checks the negative: an all-correct fleet
// flags nothing and reports full agreement.
func TestFleetValidateHealthyFleet(t *testing.T) {
	const frames = 8
	entry, err := zoo.Get("mobilenetv2-mini")
	if err != nil {
		t.Fatal(err)
	}
	images := Images(datasets.SynthImageNet(5555, frames))
	fleet := &runner.Fleet{
		Devices: []runner.DeviceSpec{
			{Profile: device.Pixel4(), Workers: 2, BatchFrames: 2},
			{Profile: device.Pixel3(), Workers: 1, BatchFrames: 1},
		},
		Policy:         runner.Weighted{},
		MonitorOptions: fleetMonOpts,
	}
	res, err := FleetClassification(entry.Mobile, pipeline.Options{Resolver: ops.NewReference(ops.Fixed())},
		images, fleet, nil)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Classification(entry.Mobile, pipeline.Options{Resolver: ops.NewReference(ops.Fixed())},
		images, runner.Options{MonitorOptions: fleetMonOpts}, nil)
	if err != nil {
		t.Fatal(err)
	}
	shards := make([]core.DeviceShardLog, len(fleet.Devices))
	for d, spec := range fleet.Devices {
		shards[d] = core.DeviceShardLog{Device: spec.Name(), Log: res.DeviceLogs[d]}
	}
	rep, err := core.FleetValidate(shards, ref, core.DefaultValidateOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Flagged) != 0 {
		t.Errorf("healthy fleet flagged %v", rep.Flagged)
	}
	if rep.FleetAgreement != 1 {
		t.Errorf("healthy fleet agreement %.2f, want 1", rep.FleetAgreement)
	}
	if len(rep.DivergentFrames) != 0 {
		t.Errorf("healthy fleet reports divergent frames %v", rep.DivergentFrames)
	}
}

// TestFleetDetectionMatchesSequential pins the detection binding of the
// fleet scheduler: the merge of per-device detection shard logs is
// record-identical to a single sequential detection replay of the same
// frames (modulo wall-clock latency values), and a per-device bug is
// isolated by fleet validation exactly as in the classification binding.
func TestFleetDetectionMatchesSequential(t *testing.T) {
	const frames = 12
	entry, err := zoo.Get("ssd-mini")
	if err != nil {
		t.Fatal(err)
	}
	samples := datasets.SynthCOCO(6666, frames)
	images := make([]*imaging.Image, len(samples))
	for i := range samples {
		images[i] = samples[i].Image
	}
	popts := pipeline.Options{Resolver: ops.NewOptimized(ops.Fixed())}

	fleet := &runner.Fleet{
		Devices: []runner.DeviceSpec{
			{Profile: device.Pixel4(), Workers: 2, BatchFrames: 4},
			{Profile: device.Pixel3(), Workers: 1, BatchFrames: 1},
		},
		Policy:         runner.RoundRobin{},
		MonitorOptions: fleetMonOpts,
	}
	res, err := FleetDetection(entry.Mobile, popts, images, fleet, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Each device's shard log must be record-identical to a sequential
	// replay with that device's profile, restricted to the frames the policy
	// assigned it — the same-assignment determinism contract, per device.
	for d, spec := range fleet.Devices {
		o := popts
		o.Device = spec.Profile
		seq, err := Detection(entry.Mobile, o, images,
			runner.Options{Workers: 1, BatchFrames: 1, MonitorOptions: fleetMonOpts}, nil)
		if err != nil {
			t.Fatal(err)
		}
		owned := map[int]bool{}
		for _, rg := range res.Assignment[d] {
			for f := rg.Start; f < rg.End; f++ {
				owned[f+1] = true // records carry 1-based frame tags
			}
		}
		var want []core.Record
		for _, r := range seq.Records {
			if owned[r.Frame] {
				r.Seq = len(want)
				want = append(want, r)
			}
		}
		got := res.DeviceLogs[d].Records
		if len(got) != len(want) {
			t.Fatalf("device %d shard log has %d records, sequential assignment %d", d, len(got), len(want))
		}
		for i := range got {
			a, b := got[i], want[i]
			// Wall-clock latency values never reproduce; everything else must.
			if a.Kind == core.KindMetric && a.Unit == "ns" {
				a.Value, b.Value = 0, 0
			}
			if a.Key != b.Key || a.Frame != b.Frame || a.Seq != b.Seq ||
				!bytes.Equal(a.Payload, b.Payload) || a.Value != b.Value {
				t.Fatalf("device %d record %d differs: %q vs %q", d, i, a.Key, b.Key)
			}
		}
	}

	// The detection fleet isolates a device-local bug like classification
	// does: inject into Pixel3 and cross-validate against a reference.
	bugRes, err := FleetDetection(entry.Mobile, popts, images, fleet,
		func(dev int, spec runner.DeviceSpec, o *pipeline.Options) {
			if dev == 1 {
				o.Bug = pipeline.BugNormalization
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Detection(entry.Mobile, pipeline.Options{Resolver: ops.NewReference(ops.Fixed())}, images,
		runner.Options{Workers: 2, BatchFrames: 2, MonitorOptions: fleetMonOpts}, nil)
	if err != nil {
		t.Fatal(err)
	}
	shards := make([]core.DeviceShardLog, len(fleet.Devices))
	for d, spec := range fleet.Devices {
		shards[d] = core.DeviceShardLog{Device: spec.Name(), Log: bugRes.DeviceLogs[d]}
	}
	rep, err := core.FleetValidate(shards, ref, core.DefaultValidateOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Flagged) != 1 || rep.Flagged[0] != "Pixel3" {
		t.Errorf("flagged %v, want exactly the bugged Pixel3", rep.Flagged)
	}
}
