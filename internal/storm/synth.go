package storm

import (
	"fmt"

	"mlexray/internal/core"
	"mlexray/internal/tensor"
)

// This file generates the storm's synthetic telemetry: one shared reference
// log covering every frame, and per-device shard logs that partition it —
// the same shape the ingest tests and the fleet replay engine use (two
// per-layer tensor+latency pairs plus a model output per frame), so the
// collector under storm exercises its full validation path, not a stub.

// deviceName names the d'th simulated device. Zero-padded so device order
// and lexical order agree everywhere (reports, WAL directory listings).
func deviceName(d int) string { return fmt.Sprintf("dev-%04d", d) }

// synthFrames builds the records for the frames in [lo, hi) — layers conv1
// and dw1 with deterministic tensor values and latencies, one model output
// per frame.
func synthFrames(lo, hi int) []core.Record {
	layers := []string{"conv1", "dw1"}
	opTypes := []string{"Conv2D", "DepthwiseConv2D"}
	var recs []core.Record
	seq := 0
	for f := lo; f < hi; f++ {
		for li, name := range layers {
			tt := tensor.New(tensor.F32, 8)
			for i := range tt.F {
				tt.F[i] = float32(f + li + i)
			}
			var r core.Record
			r.Seq, r.Frame = seq, f
			r.Key = core.LayerOutputKey(name)
			r.LayerIndex, r.LayerName, r.OpType = li, name, opTypes[li]
			r.EncodeTensor(tt, true)
			recs = append(recs, r)
			seq++
			recs = append(recs, core.Record{
				Seq: seq, Frame: f, Key: core.LayerLatencyKey(name), Kind: core.KindMetric,
				LayerIndex: li, LayerName: name, OpType: opTypes[li],
				Value: float64(1000 * (li + 1)), Unit: "ns",
			})
			seq++
		}
		out := tensor.New(tensor.F32, 4)
		out.F[f%4] = 1
		var r core.Record
		r.Seq, r.Frame = seq, f
		r.Key = core.KeyModelOutput
		r.EncodeTensor(out, true)
		recs = append(recs, r)
		seq++
	}
	return recs
}

// refLog is the fleet-wide reference: every frame in [0, frames).
func refLog(frames int) *core.Log {
	return &core.Log{Records: synthFrames(0, frames)}
}

// deviceFrames returns device d's contiguous frame range under an even
// split of frames across devices (the fleet-shard arrival the collector
// sees in production).
func deviceFrames(d, devices, frames int) (lo, hi int) {
	per := frames / devices
	lo = d * per
	hi = lo + per
	if d == devices-1 {
		hi = frames
	}
	return lo, hi
}
