// Package storm is the collector's hostile-load harness: a synthetic
// device swarm that drives a live ingest.Server through real RemoteSink
// uploads while a chaos transport damages the traffic — mid-chunk
// disconnects, slow-loris writes, lost responses, duplicated and reordered
// retries, corrupt bytes — and the collector itself is killed and
// restarted mid-storm. The harness does not hope the collector degrades
// gracefully; it checks:
//
//   - every POST /ingest response carries a documented status
//     (200/400/409/413/429/500/503, plus 502 from the sharding gateway),
//   - every chunk acked with 200 survives crash recovery byte-exactly
//     (the recovered /fleet equals a fault-free reference run folding the
//     same acked chunks, byte for byte),
//   - throttled and capped sinks eventually drain once pressure lifts
//     (no sink finishes with a sticky error),
//   - no sessions leak after the storm (idle eviction frees every slot,
//     with the WAL keeping the data recoverable).
//
// Run also measures the collector under fire: sustained frames/sec, p99
// ingest latency, peak process RSS, and the full status histogram — the
// numbers the bench suite records into BENCH_replay.json.
package storm

import (
	"bytes"
	"fmt"
	"io"
	"math"
	mrand "math/rand/v2"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"mlexray/internal/core"
	"mlexray/internal/ingest"
	"mlexray/internal/obs"
	"mlexray/internal/shard"
)

// Options sizes and shapes one storm.
type Options struct {
	// Devices is the swarm size; <= 0 means 32. Devices arrive in bursty
	// waves with jitter, with heterogeneous profiles (chunk size, log
	// format, gzip on/off).
	Devices int
	// FramesPerDevice is each device's shard of the fleet reference;
	// <= 0 means 4.
	FramesPerDevice int
	// Faults configures the chaos transport (zero value: no faults).
	Faults Faults
	// Seed makes the swarm's randomness reproducible; 0 means 1.
	Seed uint64
	// Shards > 1 runs a consistent-hash ring of that many collector shards
	// behind an in-process gateway: devices upload through the gateway, the
	// kill act takes down one shard (not the whole fleet), and the final
	// /fleet is the gateway's merged report — pinned byte-identical to the
	// fault-free single-collector reference. <= 1 means one collector, no
	// gateway.
	Shards int
	// DataDir enables the durable collector (WAL + crash recovery). It is
	// required for KillAfterChunks and IdleTimeout — both destroy
	// in-memory state that only a WAL can bring back. With Shards > 1 each
	// shard gets its own shard-<i> subdirectory.
	DataDir string
	// SegmentBytes enables WAL segment rotation on the collector(s) — the
	// rotation+compaction machinery running under fire instead of only in
	// unit tests. 0 means single-segment WALs.
	SegmentBytes int64
	// MaxSessions / MaxChunksPerSec / ChunkBurst are the collector's
	// admission-control knobs (see ingest.ServerOptions).
	MaxSessions     int
	MaxChunksPerSec float64
	ChunkBurst      int
	// IdleTimeout is the collector's session-eviction horizon.
	IdleTimeout time.Duration
	// ReadTimeout / WriteTimeout are the collector's per-request deadlines
	// (what sheds the slow-loris uploads).
	ReadTimeout  time.Duration
	WriteTimeout time.Duration
	// KillAfterChunks hard-kills and restarts the collector once that many
	// chunks have been acked mid-storm; 0 means no mid-storm kill.
	KillAfterChunks int
	// Stragglers is the fraction of devices that stall mid-stream for
	// StallFor (default 300ms) before finishing.
	Stragglers float64
	StallFor   time.Duration
	// SinkMaxElapsed is each device sink's total retry budget; <= 0 means
	// 90s — generous enough to ride out restarts and admission waves.
	SinkMaxElapsed time.Duration
	// ScrapeEvery is the in-storm /metrics sampling period: a scrape loop
	// polls every collector's (and the gateway's) exposition while the
	// swarm runs, folding the server-side view into the result next to
	// the recorder's client-side one. 0 means 250ms; negative disables
	// scraping (ServerMetrics stays nil and the reconcile invariant is
	// skipped).
	ScrapeEvery time.Duration
	// Logf, when set, narrates the storm's acts (test logging).
	Logf func(format string, args ...any)
}

// Result is what one storm observed and measured.
type Result struct {
	Devices int           `json:"devices"`
	Frames  int           `json:"frames"`
	Elapsed time.Duration `json:"elapsed_ns"`
	// FramesPerSec is the sustained ingest rate over the storm (all frames
	// acked / wall time, faults and restarts included).
	FramesPerSec float64 `json:"frames_per_sec"`
	// P99Latency is the 99th-percentile clean ingest round-trip.
	P99Latency time.Duration `json:"p99_latency_ns"`
	// LatencyHist buckets ingest latency over storm time (8 equal windows):
	// the restart stall, admission waves and drain tail stay visible instead
	// of averaging into one quantile.
	LatencyHist []LatencyBucket `json:"latency_hist,omitempty"`
	// Shards is the collector topology the storm ran (1 = no gateway).
	Shards int `json:"shards"`
	// PeakRSSBytes is the process's peak resident set (collector and swarm
	// share the process; the collector dominates).
	PeakRSSBytes int64 `json:"peak_rss_bytes"`
	// StatusCounts is the full POST /ingest status histogram, server-side.
	StatusCounts map[int]int `json:"status_counts"`
	// UndocumentedStatuses lists observed statuses outside the documented
	// set {200, 400, 409, 413, 429, 500, 503} — must be empty.
	UndocumentedStatuses []int `json:"undocumented_statuses,omitempty"`
	// FaultsInjected counts chaos injections by fault name.
	FaultsInjected map[string]int `json:"faults_injected"`
	// NetErrors counts client-visible transport errors (injected + real).
	NetErrors int `json:"net_errors"`
	// AckedChunks counts 200 acks (duplicate acks included).
	AckedChunks int `json:"acked_chunks"`
	// Restarts counts mid-storm collector kill/restart cycles (the final
	// recovery restart in durable mode is not counted).
	Restarts int `json:"restarts"`
	// Evictions/Resurrections are the final collector instance's counters.
	Evictions     int `json:"evictions"`
	Resurrections int `json:"resurrections"`
	// LeakedSessions is how many sessions survived the post-storm eviction
	// drain — must be 0 when IdleTimeout is set.
	LeakedSessions int `json:"leaked_sessions"`
	// SinkErrors holds per-device sticky sink failures — must be empty
	// (throttled/capped sinks must eventually drain).
	SinkErrors []string `json:"sink_errors,omitempty"`
	// RecoveredSessions/RecoveredChunks report the final restart's WAL
	// replay (durable mode).
	RecoveredSessions int `json:"recovered_sessions"`
	RecoveredChunks   int `json:"recovered_chunks"`
	// RefReplayRejects counts acked chunks the fault-free reference server
	// did not ack on replay — must be 0.
	RefReplayRejects int `json:"ref_replay_rejects"`
	// ScrapeSamples counts successful in-storm /metrics scrape rounds.
	ScrapeSamples int `json:"scrape_samples"`
	// ServerMetrics is the final post-recovery /metrics scrape, summed
	// across every shard (nil when scraping is disabled) — the collector
	// fleet's own account of the storm.
	ServerMetrics map[string]float64 `json:"server_metrics,omitempty"`
	// ServerChunks is mlexray_ingest_chunks_total out of ServerMetrics:
	// the chunks the collectors say they applied.
	ServerChunks int `json:"server_chunks"`
	// DistinctAckedChunks is the recorder's distinct (device, stream,
	// chunk) acked set — what ServerChunks must reconcile with: a chunk
	// the server acked must be counted applied exactly once, across every
	// retry, duplicate, eviction and restart.
	DistinctAckedChunks int `json:"distinct_acked_chunks"`
	// FleetLive is the recovered collector's /fleet body; FleetRef is the
	// fault-free reference server's /fleet over the same acked chunks.
	// The invariant is FleetLive == FleetRef, byte for byte.
	FleetLive []byte `json:"-"`
	FleetRef  []byte `json:"-"`
}

// documentedStatuses is the collector's public POST /ingest status
// contract. 502 is the gateway's addition: the owning shard is unreachable
// (killed mid-storm) — transient by definition, so sinks retry it like any
// 5xx.
var documentedStatuses = map[int]bool{
	http.StatusOK:                    true,
	http.StatusBadRequest:            true,
	http.StatusConflict:              true,
	http.StatusRequestEntityTooLarge: true,
	http.StatusTooManyRequests:       true,
	http.StatusInternalServerError:   true,
	http.StatusBadGateway:            true,
	http.StatusServiceUnavailable:    true,
}

// LatencyBucket is one time window of the storm's ingest-latency history.
type LatencyBucket struct {
	StartMs int64 `json:"start_ms"`
	EndMs   int64 `json:"end_ms"`
	Count   int   `json:"count"`
	P50Ns   int64 `json:"p50_ns"`
	P99Ns   int64 `json:"p99_ns"`
	MaxNs   int64 `json:"max_ns"`
}

// latencyHistogram splits [0, elapsed) into n equal windows and summarizes
// the latency samples completing in each; samples past elapsed (drain tail)
// land in the last bucket. The per-window quantiles come from an
// obs.Histogram over obs.LatencyBounds — the same log-spaced buckets the
// collectors' own /metrics latency histograms use, so the client-side and
// server-side views of one storm bucket identically (maxima stay exact
// from the raw samples; a bucketed histogram cannot produce them).
func latencyHistogram(offsets, lats []time.Duration, elapsed time.Duration, n int) []LatencyBucket {
	if len(lats) == 0 || elapsed <= 0 || n <= 0 {
		return nil
	}
	width := elapsed / time.Duration(n)
	if width <= 0 {
		width = 1
	}
	hists := make([]*obs.Histogram, n)
	maxes := make([]time.Duration, n)
	counts := make([]int, n)
	for i, off := range offsets {
		b := int(off / width)
		if b < 0 {
			b = 0
		}
		if b >= n {
			b = n - 1
		}
		if hists[b] == nil {
			hists[b] = obs.NewHistogram(obs.LatencyBounds())
		}
		hists[b].Observe(lats[i].Seconds())
		counts[b]++
		if lats[i] > maxes[b] {
			maxes[b] = lats[i]
		}
	}
	out := make([]LatencyBucket, 0, n)
	for b := 0; b < n; b++ {
		lb := LatencyBucket{
			StartMs: (time.Duration(b) * width).Milliseconds(),
			EndMs:   (time.Duration(b+1) * width).Milliseconds(),
			Count:   counts[b],
		}
		if counts[b] > 0 {
			lb.P50Ns = histQuantileNs(hists[b], 0.50)
			lb.P99Ns = histQuantileNs(hists[b], 0.99)
			lb.MaxNs = maxes[b].Nanoseconds()
		}
		out = append(out, lb)
	}
	return out
}

// histQuantileNs reads a bucketed quantile back out in nanoseconds.
func histQuantileNs(h *obs.Histogram, q float64) int64 {
	return int64(math.Round(h.Quantile(q) * 1e9))
}

// CheckInvariants returns the storm's graceful-degradation verdict: nil
// when every robustness invariant held.
func (r *Result) CheckInvariants() error {
	var problems []string
	if len(r.UndocumentedStatuses) > 0 {
		problems = append(problems, fmt.Sprintf("undocumented statuses observed: %v", r.UndocumentedStatuses))
	}
	if len(r.SinkErrors) > 0 {
		problems = append(problems, fmt.Sprintf("%d sinks failed to drain: %s", len(r.SinkErrors), r.SinkErrors[0]))
	}
	if r.LeakedSessions > 0 {
		problems = append(problems, fmt.Sprintf("%d sessions leaked past the eviction drain", r.LeakedSessions))
	}
	if r.RefReplayRejects > 0 {
		problems = append(problems, fmt.Sprintf("%d acked chunks rejected by the fault-free reference replay", r.RefReplayRejects))
	}
	if !bytes.Equal(r.FleetLive, r.FleetRef) {
		problems = append(problems, "recovered /fleet differs from the fault-free reference over the same acked chunks")
	}
	// The observability pillar: the server's own telemetry must agree with
	// what the clients saw. Only meaningful when the final scrape ran and
	// every sink drained — a given-up sink leaves chunks the server logged
	// but no client acked, which is degradation, not a counting bug.
	if r.ServerMetrics != nil && len(r.SinkErrors) == 0 && r.ServerChunks != r.DistinctAckedChunks {
		problems = append(problems, fmt.Sprintf(
			"server-reported chunk counters do not reconcile with client acks: mlexray_ingest_chunks_total=%d, distinct acked chunks=%d",
			r.ServerChunks, r.DistinctAckedChunks))
	}
	if len(problems) == 0 {
		return nil
	}
	return fmt.Errorf("storm invariants violated: %s", strings.Join(problems, "; "))
}

// ackedChunk is one 200-acked upload as the server saw it: the generation
// headers plus the exact wire bytes the handler consumed.
type ackedChunk struct {
	stream string
	chunk  int
	body   []byte
}

// statusWriter captures the handler's status code. Unwrap keeps
// http.ResponseController (the per-request deadlines) working through the
// wrapper.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// teeBody lets the recorder capture exactly the bytes the handler read,
// without consuming the body itself (which would defeat the collector's
// read deadline — the slow-loris bytes must trickle into the handler).
type teeBody struct {
	io.Reader
	io.Closer
}

// recorder wraps the live collector handler, recording the authoritative
// server-side view: the status of every POST /ingest and, for each 200,
// the acked chunk's headers and exact bytes in per-device completion
// order. The inner handler swaps across collector restarts; the record
// spans them.
type recorder struct {
	mu     sync.Mutex
	inner  http.Handler
	status map[int]int
	acked  map[string][]ackedChunk
	ackedN int
}

func newRecorder() *recorder {
	return &recorder{status: make(map[int]int), acked: make(map[string][]ackedChunk)}
}

func (rec *recorder) setInner(h http.Handler) {
	rec.mu.Lock()
	rec.inner = h
	rec.mu.Unlock()
}

func (rec *recorder) ackedCount() int {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	return rec.ackedN
}

func (rec *recorder) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rec.mu.Lock()
	inner := rec.inner
	rec.mu.Unlock()
	isIngest := r.Method == http.MethodPost && r.URL.Path == "/ingest"
	if !isIngest {
		inner.ServeHTTP(w, r)
		return
	}
	var buf bytes.Buffer
	r.Body = teeBody{Reader: io.TeeReader(r.Body, &buf), Closer: r.Body}
	sw := &statusWriter{ResponseWriter: w}
	inner.ServeHTTP(sw, r)
	device := r.Header.Get("X-MLEXray-Device")
	if device == "" {
		device = r.URL.Query().Get("device")
	}
	chunkIdx := -1
	if h := r.Header.Get("X-MLEXray-Chunk"); h != "" {
		if idx, err := strconv.Atoi(h); err == nil {
			chunkIdx = idx
		}
	}
	rec.mu.Lock()
	rec.status[sw.status]++
	if sw.status == http.StatusOK {
		rec.acked[device] = append(rec.acked[device], ackedChunk{
			stream: r.Header.Get("X-MLEXray-Stream"),
			chunk:  chunkIdx,
			body:   bytes.Clone(buf.Bytes()),
		})
		rec.ackedN++
	}
	rec.mu.Unlock()
}

// collector owns one live ingest.Server incarnation: start boots it
// (reusing the pinned address across restarts), kill hard-closes the HTTP
// server and the WAL — in-flight uploads are cut, exactly like a crash,
// except that acked appends are always either fully durable or 503'd (the
// ingest.Server close barrier). With rec set the recorder fronts the
// collector directly (single-collector storms); sharded storms leave rec
// nil and put the recorder in front of the gateway instead.
type collector struct {
	opts ingest.ServerOptions
	rec  *recorder
	addr string

	mu   sync.Mutex // guards srv/hs/done: the killer swaps them mid-storm while the scrape loop reads
	srv  *ingest.Server
	hs   *http.Server
	done chan struct{}
}

// server returns the current incarnation. The scrape loop must go through
// this — the killer replaces c.srv concurrently. (Between kill and restart
// it can hand back a closed server; GET /metrics still answers from the
// dead incarnation's registry, which is exactly the pre-crash view.)
func (c *collector) server() *ingest.Server {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.srv
}

func (c *collector) start() error {
	srv, err := ingest.NewServer(c.opts)
	if err != nil {
		return err
	}
	addr := c.addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	var ln net.Listener
	for i := 0; ; i++ {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if i >= 200 {
			return fmt.Errorf("storm: relisten on %s: %w", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if c.addr == "" {
		c.addr = ln.Addr().String()
	}
	handler := http.Handler(srv)
	if c.rec != nil {
		c.rec.setInner(srv)
		handler = c.rec
	}
	hs := &http.Server{Handler: handler, ReadHeaderTimeout: 5 * time.Second}
	done := make(chan struct{})
	go func() {
		hs.Serve(ln)
		close(done)
	}()
	c.mu.Lock()
	c.srv = srv
	c.hs = hs
	c.done = done
	c.mu.Unlock()
	return nil
}

func (c *collector) kill() {
	c.mu.Lock()
	hs, done, srv := c.hs, c.done, c.srv
	c.mu.Unlock()
	hs.Close()
	<-done
	srv.Close()
}

// memWriter is a minimal in-process ResponseWriter for driving a handler
// without a network (the reference replay and the /fleet snapshots).
type memWriter struct {
	hdr  http.Header
	code int
	buf  bytes.Buffer
}

func newMemWriter() *memWriter { return &memWriter{hdr: make(http.Header)} }

func (w *memWriter) Header() http.Header { return w.hdr }

func (w *memWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
}

func (w *memWriter) Write(p []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.buf.Write(p)
}

// getPath drives one GET against a handler in process.
func getPath(h http.Handler, path string) (int, []byte) {
	req, err := http.NewRequest(http.MethodGet, "http://storm"+path, nil)
	if err != nil {
		return 0, nil
	}
	w := newMemWriter()
	h.ServeHTTP(w, req)
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.code, w.buf.Bytes()
}

// peakRSSBytes reads the process's resident-set high-water mark (VmHWM)
// from /proc; off Linux it falls back to the Go runtime's Sys estimate.
func peakRSSBytes() int64 {
	if data, err := os.ReadFile("/proc/self/status"); err == nil {
		for _, line := range strings.Split(string(data), "\n") {
			if !strings.HasPrefix(line, "VmHWM:") {
				continue
			}
			fields := strings.Fields(line)
			if len(fields) >= 2 {
				if kb, err := strconv.ParseInt(fields[1], 10, 64); err == nil {
					return kb * 1024
				}
			}
		}
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.Sys)
}

// Run executes one storm end to end and returns what it observed. The
// returned error covers harness failures (could not boot the collector);
// invariant verdicts live in Result.CheckInvariants, so a failing storm
// still hands back its full evidence.
func Run(opts Options) (*Result, error) {
	if opts.Devices <= 0 {
		opts.Devices = 32
	}
	if opts.FramesPerDevice <= 0 {
		opts.FramesPerDevice = 4
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.StallFor <= 0 {
		opts.StallFor = 300 * time.Millisecond
	}
	if opts.SinkMaxElapsed <= 0 {
		opts.SinkMaxElapsed = 90 * time.Second
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if opts.DataDir == "" && (opts.KillAfterChunks > 0 || opts.IdleTimeout > 0) {
		return nil, fmt.Errorf("storm: kill/restart and idle eviction require DataDir — recovery needs a WAL")
	}

	nShards := opts.Shards
	if nShards < 1 {
		nShards = 1
	}
	frames := opts.Devices * opts.FramesPerDevice
	ref := refLog(frames)
	rec := newRecorder()
	serverOpts := func(dataDir string) ingest.ServerOptions {
		return ingest.ServerOptions{
			Ref:                   ref,
			DataDir:               dataDir,
			SegmentBytes:          opts.SegmentBytes,
			MaxSessions:           opts.MaxSessions,
			MaxChunksPerSec:       opts.MaxChunksPerSec,
			ChunkBurst:            opts.ChunkBurst,
			IdleTimeout:           opts.IdleTimeout,
			ReadTimeout:           opts.ReadTimeout,
			WriteTimeout:          opts.WriteTimeout,
			SessionRetryAfterSecs: 1,
		}
	}
	// Topology: one recorder-fronted collector, or a ring of collectors
	// behind a recorder-fronted gateway. Either way the recorder sees every
	// client-visible status and every acked chunk's exact bytes, and the
	// collectors keep pinned addresses across restarts so the ring's URLs
	// stay valid through the kill act.
	var cols []*collector
	var gw *shard.Gateway
	var gwHS *http.Server
	var gwDone chan struct{}
	targetAddr := ""
	if nShards == 1 {
		col := &collector{rec: rec, opts: serverOpts(opts.DataDir)}
		if err := col.start(); err != nil {
			return nil, err
		}
		cols = []*collector{col}
		targetAddr = col.addr
	} else {
		var addrs []shard.ShardAddr
		for i := 0; i < nShards; i++ {
			dir := ""
			if opts.DataDir != "" {
				dir = filepath.Join(opts.DataDir, fmt.Sprintf("shard-%d", i))
				if err := os.MkdirAll(dir, 0o755); err != nil {
					return nil, err
				}
			}
			c := &collector{opts: serverOpts(dir)}
			if err := c.start(); err != nil {
				return nil, err
			}
			cols = append(cols, c)
			addrs = append(addrs, shard.ShardAddr{Name: fmt.Sprintf("shard-%d", i), URL: "http://" + c.addr})
		}
		gwTransport := &http.Transport{MaxIdleConnsPerHost: 64}
		defer gwTransport.CloseIdleConnections()
		var err error
		gw, err = shard.NewGateway(shard.GatewayOptions{
			Shards: addrs,
			Client: &http.Client{Transport: gwTransport},
		})
		if err != nil {
			return nil, err
		}
		rec.setInner(gw)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		gwHS = &http.Server{Handler: rec, ReadHeaderTimeout: 5 * time.Second}
		gwDone = make(chan struct{})
		go func() {
			gwHS.Serve(ln)
			close(gwDone)
		}()
		targetAddr = ln.Addr().String()
	}
	logf("storm: %d shard(s) behind %s, %d devices x %d frames",
		nShards, targetAddr, opts.Devices, opts.FramesPerDevice)

	met := newStormMetrics()
	baseTransport := &http.Transport{MaxIdleConnsPerHost: 64}
	defer baseTransport.CloseIdleConnections()

	// The kill act: once enough chunks are acked, hard-kill a collector
	// mid-storm and restart it on the same address. In a sharded storm the
	// victim is shard 0 — the rest of the ring keeps serving while the
	// gateway answers 502 for the dead shard's devices and their sinks
	// retry. In-flight uploads see cut connections; recovery replays the
	// WAL.
	killerDone := make(chan struct{})
	stopKiller := make(chan struct{})
	restarts := 0
	var killerErr error
	if opts.KillAfterChunks > 0 {
		victim := cols[0]
		go func() {
			defer close(killerDone)
			for {
				select {
				case <-stopKiller:
					return
				default:
				}
				if rec.ackedCount() >= opts.KillAfterChunks {
					logf("storm: kill act at %d acked chunks", rec.ackedCount())
					victim.kill()
					if err := victim.start(); err != nil {
						killerErr = err
						return
					}
					restarts++
					return
				}
				time.Sleep(2 * time.Millisecond)
			}
		}()
	} else {
		close(killerDone)
	}

	// The scrape loop: while the swarm runs, poll every collector's (and the
	// gateway's) /metrics in process, exactly as an external Prometheus
	// would over HTTP. Its job is interference detection — exposition must
	// stay parseable and cheap under full ingest load, crash/restart churn
	// included. The final reconcile scrape below is separate: it reads the
	// post-recovery counters this loop never sees.
	scrapeEvery := opts.ScrapeEvery
	if scrapeEvery == 0 {
		scrapeEvery = 250 * time.Millisecond
	}
	scrapeSamples := 0 // scraper-goroutine-only until scraperDone closes
	stopScraper := make(chan struct{})
	scraperDone := make(chan struct{})
	if scrapeEvery > 0 {
		go func() {
			defer close(scraperDone)
			tick := time.NewTicker(scrapeEvery)
			defer tick.Stop()
			for {
				select {
				case <-stopScraper:
					return
				case <-tick.C:
				}
				ok := true
				for _, c := range cols {
					if code, body := getPath(c.server(), "/metrics"); code != http.StatusOK {
						ok = false
					} else if _, err := obs.ParseText(body); err != nil {
						ok = false
					}
				}
				if gw != nil {
					if code, _ := getPath(gw, "/metrics"); code != http.StatusOK {
						ok = false
					}
				}
				if ok {
					scrapeSamples++
				}
			}
		}()
	} else {
		close(scraperDone)
	}

	// The swarm: heterogeneous profiles, bursty waves, stragglers.
	start := time.Now()
	var wg sync.WaitGroup
	sinkErrs := make([]string, opts.Devices)
	formats := []core.LogFormat{core.FormatBinary, core.FormatJSONL}
	for d := 0; d < opts.Devices; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			rng := mrand.New(mrand.NewPCG(opts.Seed, uint64(d)))
			wave := time.Duration(d/16) * 25 * time.Millisecond
			time.Sleep(wave + time.Duration(rng.IntN(10))*time.Millisecond)
			tr := &chaosTransport{base: baseTransport, faults: opts.Faults, rng: rng, met: met}
			sink, err := ingest.NewRemoteSink(ingest.SinkOptions{
				URL:          "http://" + targetAddr,
				Device:       deviceName(d),
				Format:       formats[d%2],
				Gzip:         d%3 == 0,
				ChunkBytes:   256 << (d % 3),
				MaxRetries:   10000,
				RetryBackoff: 5 * time.Millisecond,
				MaxElapsed:   opts.SinkMaxElapsed,
				Client:       &http.Client{Transport: tr, Timeout: 30 * time.Second},
			})
			if err != nil {
				sinkErrs[d] = err.Error()
				return
			}
			lo, hi := deviceFrames(d, opts.Devices, frames)
			recs := synthFrames(lo, hi)
			straggler := rng.Float64() < opts.Stragglers
			sent, startIdx := 0, 0
			for startIdx < len(recs) {
				end := startIdx
				for end < len(recs) && recs[end].Frame == recs[startIdx].Frame {
					end++
				}
				if err := sink.WriteFrame(recs[startIdx].Frame, recs[startIdx:end]); err != nil {
					sinkErrs[d] = err.Error()
					return
				}
				sent++
				if straggler && sent == (hi-lo)/2+1 {
					time.Sleep(opts.StallFor)
				}
				if p := rng.IntN(3); p > 0 {
					time.Sleep(time.Duration(p) * time.Millisecond)
				}
				startIdx = end
			}
			if err := sink.Flush(); err != nil {
				sinkErrs[d] = err.Error()
			}
		}(d)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(stopKiller)
	<-killerDone
	close(stopScraper)
	<-scraperDone
	if killerErr != nil {
		return nil, killerErr
	}
	logf("storm: swarm drained in %v (%d acked chunks)", elapsed.Round(time.Millisecond), rec.ackedCount())

	res := &Result{
		Devices:      opts.Devices,
		Frames:       frames,
		Elapsed:      elapsed,
		FramesPerSec: float64(frames) / elapsed.Seconds(),
		Restarts:     restarts,
		NetErrors:    met.netErrors,
		Shards:       nShards,
	}
	res.ScrapeSamples = scrapeSamples
	for _, e := range sinkErrs {
		if e != "" {
			res.SinkErrors = append(res.SinkErrors, e)
		}
	}

	// Session-leak drain: with eviction on, pressure has lifted, so every
	// slot (on every shard) must free once the idle horizon passes — the
	// data stays in the WAL for the final recovery below.
	if opts.IdleTimeout > 0 {
		deadline := time.Now().Add(10*time.Second + 10*opts.IdleTimeout)
		for {
			left := 0
			for _, c := range cols {
				c.srv.EvictIdle()
				left += len(c.srv.Devices())
			}
			if left == 0 || time.Now().After(deadline) {
				res.LeakedSessions = left
				break
			}
			time.Sleep(opts.IdleTimeout / 4)
		}
	}
	for _, c := range cols {
		res.Evictions += c.srv.Evictions()
		res.Resurrections += c.srv.Resurrections()
	}

	// Final crash recovery: every shard dies and comes back; everything the
	// storm acked must return from the per-shard WALs.
	if opts.DataDir != "" {
		for _, c := range cols {
			c.kill()
			if err := c.start(); err != nil {
				return nil, err
			}
			rs := c.srv.Recovery()
			res.RecoveredSessions += rs.Sessions
			res.RecoveredChunks += rs.Chunks
		}
		logf("storm: final recovery: %d sessions, %d chunks across %d shard(s)",
			res.RecoveredSessions, res.RecoveredChunks, nShards)
	}
	// The live fleet verdict: the gateway's merged report in sharded mode
	// (fanned out over the recovered shards), the collector's own /fleet
	// otherwise.
	var code int
	var body []byte
	if gw != nil {
		code, body = getPath(gw, "/fleet")
	} else {
		code, body = getPath(cols[0].srv, "/fleet")
	}
	shutdown := func() {
		for _, c := range cols {
			c.kill()
		}
		if gwHS != nil {
			gwHS.Close()
			<-gwDone
		}
	}
	if code != http.StatusOK {
		shutdown()
		return nil, fmt.Errorf("storm: /fleet after recovery: %d: %s", code, body)
	}
	res.FleetLive = body

	// The reconcile scrape: after the final kill/restart every durable
	// shard's counters were rebuilt purely from WAL replay, so each distinct
	// logged chunk was counted exactly once — any mid-storm resurrection
	// double-counting died with the pre-crash registry. (Without a DataDir
	// nothing ever restarts, so the live counters are equally clean.)
	// Summed across shards, mlexray_ingest_chunks_total must equal the
	// recorder's distinct acked set; CheckInvariants holds the two up
	// against each other.
	if scrapeEvery > 0 {
		merged := make(map[string]float64)
		for _, c := range cols {
			code, text := getPath(c.srv, "/metrics")
			if code != http.StatusOK {
				shutdown()
				return nil, fmt.Errorf("storm: final /metrics scrape: %d: %s", code, text)
			}
			parsed, err := obs.ParseText(text)
			if err != nil {
				shutdown()
				return nil, fmt.Errorf("storm: final /metrics scrape: %w", err)
			}
			obs.MergeParsed(merged, parsed)
		}
		res.ServerMetrics = merged
		res.ServerChunks = int(obs.SumSeries(merged, "mlexray_ingest_chunks_total"))
	}
	shutdown()

	// The fault-free reference: a fresh in-memory collector fed exactly
	// the acked chunks, per device in ack order. Byte-equal /fleet is the
	// graceful-degradation bar — chaos may slow the storm, never skew it.
	met.mu.Lock()
	latencies := append([]time.Duration(nil), met.latencies...)
	offsets := append([]time.Duration(nil), met.offsets...)
	faults := make(map[string]int, len(met.faults))
	for k, v := range met.faults {
		faults[k] = v
	}
	met.mu.Unlock()
	res.FaultsInjected = faults
	if len(latencies) > 0 {
		overall := obs.NewHistogram(obs.LatencyBounds())
		for _, l := range latencies {
			overall.Observe(l.Seconds())
		}
		res.P99Latency = time.Duration(histQuantileNs(overall, 0.99))
	}
	res.LatencyHist = latencyHistogram(offsets, latencies, elapsed, 8)

	rec.mu.Lock()
	res.StatusCounts = make(map[int]int, len(rec.status))
	for code, n := range rec.status {
		res.StatusCounts[code] = n
		if !documentedStatuses[code] {
			res.UndocumentedStatuses = append(res.UndocumentedStatuses, code)
		}
	}
	res.AckedChunks = rec.ackedN
	// Distinct (device, stream, chunk) keys: a chunk whose 200 the client
	// never saw (cut response) gets re-sent and re-acked, so the raw acked
	// list can hold the same logical chunk twice — the server counts it
	// once (duplicate-chunk path), and so must the reconcile side.
	distinct := make(map[string]struct{}, rec.ackedN)
	for dev, chunks := range rec.acked {
		for _, ch := range chunks {
			distinct[dev+"\x00"+ch.stream+"\x00"+strconv.Itoa(ch.chunk)] = struct{}{}
		}
	}
	res.DistinctAckedChunks = len(distinct)
	ackedDevices := make([]string, 0, len(rec.acked))
	for dev := range rec.acked {
		ackedDevices = append(ackedDevices, dev)
	}
	sort.Strings(ackedDevices)
	ackedByDevice := make(map[string][]ackedChunk, len(rec.acked))
	for dev, chunks := range rec.acked {
		ackedByDevice[dev] = chunks
	}
	rec.mu.Unlock()
	sort.Ints(res.UndocumentedStatuses)

	refSrv, err := ingest.NewServer(ingest.ServerOptions{Ref: ref})
	if err != nil {
		return nil, err
	}
	for _, dev := range ackedDevices {
		for _, ch := range ackedByDevice[dev] {
			req, err := http.NewRequest(http.MethodPost, "http://storm/ingest", bytes.NewReader(ch.body))
			if err != nil {
				return nil, err
			}
			req.Header.Set("X-MLEXray-Device", dev)
			if ch.chunk >= 0 {
				req.Header.Set("X-MLEXray-Chunk", strconv.Itoa(ch.chunk))
				req.Header.Set("X-MLEXray-Stream", ch.stream)
			}
			w := newMemWriter()
			refSrv.ServeHTTP(w, req)
			if w.code != http.StatusOK {
				res.RefReplayRejects++
			}
		}
	}
	code, body = getPath(refSrv, "/fleet")
	if code != http.StatusOK {
		return nil, fmt.Errorf("storm: reference /fleet: %d: %s", code, body)
	}
	res.FleetRef = body

	res.PeakRSSBytes = peakRSSBytes()
	return res, nil
}
