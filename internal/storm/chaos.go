package storm

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	mrand "math/rand/v2"
	"net/http"
	"sync"
	"time"
)

// Faults are the chaos layer's per-request fault probabilities. Each upload
// attempt draws once; at most one fault fires per attempt (probabilities
// are treated as cumulative slices of [0,1)). Every fault is survivable by
// construction: whenever the delivered bytes were damaged — or the response
// was deliberately lost — the client side sees a network error, so the
// sink's retry machinery re-sends the chunk from clean bytes. The server,
// meanwhile, sees exactly the damage: truncated bodies, corrupt payloads,
// duplicated and reordered retries, trickled writes.
type Faults struct {
	// Disconnect cuts the request body mid-chunk: the server reads a
	// truncated (possibly mid-gzip) body, the client gets a broken-pipe
	// style error. Covers both "radio dropped mid-upload" and "truncated
	// gzip body".
	Disconnect float64
	// SlowLoris trickles the body in tiny writes with delays, long enough
	// to trip the collector's per-request read deadline; the response is
	// dropped client-side either way.
	SlowLoris float64
	// Corrupt flips a body byte and delivers the chunk fully, then drops
	// the response: the server judges damaged bytes, the client retries
	// clean ones.
	Corrupt float64
	// DropResponse delivers the chunk intact and discards the response —
	// the classic lost-ack, forcing an idempotent duplicate retry.
	DropResponse float64
	// Duplicate delivers the same request twice back-to-back (a retry storm
	// double-send); the second response is the one the client sees.
	Duplicate float64
	// ReplayStale re-delivers the device's previous request after the
	// current one — a reordered retry arriving late.
	ReplayStale float64
}

// AllFaults enables every fault type at storm-smoke rates: roughly a third
// of upload attempts are damaged one way or another.
func AllFaults() Faults {
	return Faults{
		Disconnect:   0.08,
		SlowLoris:    0.04,
		Corrupt:      0.05,
		DropResponse: 0.08,
		Duplicate:    0.05,
		ReplayStale:  0.05,
	}
}

// fault names index the injection counters.
const (
	faultNone         = ""
	faultDisconnect   = "disconnect"
	faultSlowLoris    = "slow_loris"
	faultCorrupt      = "corrupt"
	faultDropResponse = "drop_response"
	faultDuplicate    = "duplicate"
	faultReplayStale  = "replay_stale"
)

// pick draws this attempt's fault.
func (f Faults) pick(rng *mrand.Rand) string {
	x := rng.Float64()
	for _, c := range []struct {
		p    float64
		name string
	}{
		{f.Disconnect, faultDisconnect},
		{f.SlowLoris, faultSlowLoris},
		{f.Corrupt, faultCorrupt},
		{f.DropResponse, faultDropResponse},
		{f.Duplicate, faultDuplicate},
		{f.ReplayStale, faultReplayStale},
	} {
		if x < c.p {
			return c.name
		}
		x -= c.p
	}
	return faultNone
}

// errChaos marks client-visible failures the chaos layer manufactured; the
// sink retries them like any network error.
var errChaos = errors.New("chaos")

// stormMetrics aggregates client-side observations across every device's
// transport: fault injections, raw network errors, and the latency of
// clean (unfaulted) ingest round-trips for the p99.
type stormMetrics struct {
	mu        sync.Mutex
	start     time.Time
	faults    map[string]int
	netErrors int
	latencies []time.Duration
	// offsets[i] is when (since start) latencies[i]'s request completed —
	// what lets the harness bucket latency over storm time instead of
	// flattening restarts and admission waves into one number.
	offsets []time.Duration
}

func newStormMetrics() *stormMetrics {
	return &stormMetrics{start: time.Now(), faults: make(map[string]int)}
}

func (m *stormMetrics) countFault(name string) {
	m.mu.Lock()
	m.faults[name]++
	m.mu.Unlock()
}

func (m *stormMetrics) countNetError() {
	m.mu.Lock()
	m.netErrors++
	m.mu.Unlock()
}

func (m *stormMetrics) observe(d time.Duration) {
	m.mu.Lock()
	m.latencies = append(m.latencies, d)
	m.offsets = append(m.offsets, time.Since(m.start))
	m.mu.Unlock()
}

// chaosTransport wraps one device's HTTP transport with the fault layer.
// RemoteSink posts sequentially from a single goroutine, so the transport
// needs no locking of its own state; the shared metrics sink has its own.
type chaosTransport struct {
	base   http.RoundTripper
	faults Faults
	rng    *mrand.Rand
	met    *stormMetrics
	// prev is the last fully delivered ingest request (for ReplayStale).
	prevURL    string
	prevHeader http.Header
	prevBody   []byte
}

// cutReader yields the intact prefix of a cut body, then fails the read —
// the transport aborts the upload mid-chunk while Content-Length still
// promises the full body, so the server sees an unexpected EOF.
type cutReader struct {
	data []byte
	off  int
}

func (c *cutReader) Read(p []byte) (int, error) {
	if c.off >= len(c.data) {
		return 0, fmt.Errorf("%w: connection cut mid-chunk", errChaos)
	}
	n := copy(p, c.data[c.off:])
	c.off += n
	return n, nil
}

// slowReader trickles the body in small reads with delays between them.
type slowReader struct {
	data  []byte
	off   int
	step  int
	delay time.Duration
}

func (s *slowReader) Read(p []byte) (int, error) {
	if s.off >= len(s.data) {
		return 0, io.EOF
	}
	time.Sleep(s.delay)
	end := min(s.off+s.step, len(s.data))
	if len(p) < end-s.off {
		end = s.off + len(p)
	}
	n := copy(p, s.data[s.off:end])
	s.off += n
	return n, nil
}

// deliver sends one shaped request through the base transport, timing it.
func (c *chaosTransport) deliver(req *http.Request, body io.Reader, contentLength int64) (*http.Response, time.Duration, error) {
	inner, err := http.NewRequestWithContext(req.Context(), req.Method, req.URL.String(), body)
	if err != nil {
		return nil, 0, err
	}
	inner.Header = req.Header.Clone()
	inner.ContentLength = contentLength
	start := time.Now()
	resp, err := c.base.RoundTrip(inner)
	return resp, time.Since(start), err
}

// drain consumes and closes a response the chaos layer is about to hide
// from the client, so the pooled connection is reusable.
func drainResponse(resp *http.Response) {
	if resp == nil {
		return
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
}

// RoundTrip implements the fault layer. Non-ingest requests (GETs) pass
// through untouched.
func (c *chaosTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	var body []byte
	if req.Body != nil {
		b, err := io.ReadAll(req.Body)
		req.Body.Close()
		if err != nil {
			return nil, err
		}
		body = b
	}
	fault := faultNone
	if req.Method == http.MethodPost && len(body) > 0 {
		fault = c.faults.pick(c.rng)
	}
	if fault != faultNone {
		c.met.countFault(fault)
	}

	switch fault {
	case faultDisconnect:
		cut := c.rng.IntN(len(body))
		resp, _, err := c.deliver(req, &cutReader{data: body[:cut]}, int64(len(body)))
		if err != nil {
			c.met.countNetError()
			return nil, err
		}
		// The server answered before reading the whole body (an admission
		// rejection): the cut never landed, pass the response through.
		return resp, nil

	case faultSlowLoris:
		r := &slowReader{
			data:  body,
			step:  32,
			delay: time.Duration(2+c.rng.IntN(8)) * time.Millisecond,
		}
		resp, _, err := c.deliver(req, r, int64(len(body)))
		if err != nil {
			c.met.countNetError()
			return nil, err
		}
		// Whatever the server decided — shed by its read deadline or
		// accepted after the crawl — the ack is lost in the field.
		drainResponse(resp)
		return nil, fmt.Errorf("%w: ack lost after slow-loris upload", errChaos)

	case faultCorrupt:
		damaged := append([]byte(nil), body...)
		damaged[c.rng.IntN(len(damaged))] ^= 0xff
		resp, _, err := c.deliver(req, bytes.NewReader(damaged), int64(len(damaged)))
		if err != nil {
			c.met.countNetError()
			return nil, err
		}
		drainResponse(resp)
		return nil, fmt.Errorf("%w: ack lost after corrupt delivery", errChaos)

	case faultDropResponse:
		resp, _, err := c.deliver(req, bytes.NewReader(body), int64(len(body)))
		if err != nil {
			c.met.countNetError()
			return nil, err
		}
		c.remember(req, body)
		drainResponse(resp)
		return nil, fmt.Errorf("%w: response dropped", errChaos)

	case faultDuplicate:
		resp1, _, err := c.deliver(req, bytes.NewReader(body), int64(len(body)))
		if err != nil {
			c.met.countNetError()
			return nil, err
		}
		drainResponse(resp1)
		c.remember(req, body)
		resp2, _, err := c.deliver(req, bytes.NewReader(body), int64(len(body)))
		if err != nil {
			c.met.countNetError()
			return nil, err
		}
		return resp2, nil

	case faultReplayStale:
		resp, _, err := c.deliver(req, bytes.NewReader(body), int64(len(body)))
		if err != nil {
			c.met.countNetError()
			return nil, err
		}
		if c.prevBody != nil {
			stale, _ := http.NewRequest(http.MethodPost, c.prevURL, nil)
			stale.Header = c.prevHeader.Clone()
			staleResp, _, serr := c.deliver(stale, bytes.NewReader(c.prevBody), int64(len(c.prevBody)))
			if serr == nil {
				drainResponse(staleResp)
			}
		}
		c.remember(req, body)
		return resp, nil
	}

	resp, took, err := c.deliver(req, bytes.NewReader(body), int64(len(body)))
	if err != nil {
		c.met.countNetError()
		return nil, err
	}
	if req.Method == http.MethodPost && len(body) > 0 {
		c.met.observe(took)
		c.remember(req, body)
	}
	return resp, nil
}

// remember keeps the last fully delivered request for ReplayStale.
func (c *chaosTransport) remember(req *http.Request, body []byte) {
	if c.faults.ReplayStale <= 0 {
		return
	}
	c.prevURL = req.URL.String()
	c.prevHeader = req.Header.Clone()
	c.prevBody = append(c.prevBody[:0], body...)
}
