package storm

import (
	"runtime"
	"strings"
	"testing"
	"time"

	"mlexray/internal/obs"
)

// waitGoroutines polls for the goroutine count to settle back near the
// baseline, giving pooled-connection and server goroutines time to exit.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		n := runtime.NumGoroutine()
		// Allow a small slack: the runtime's own background goroutines
		// (GC workers, timer scavenger) come and go.
		if n <= baseline+3 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutines leaked: %d now vs %d baseline\n%s", n, baseline, buf)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestStormOptionValidation pins the harness's own guard rails.
func TestStormOptionValidation(t *testing.T) {
	if _, err := Run(Options{Devices: 1, KillAfterChunks: 1}); err == nil {
		t.Error("kill/restart without DataDir accepted")
	}
	if _, err := Run(Options{Devices: 1, IdleTimeout: time.Second}); err == nil {
		t.Error("idle eviction without DataDir accepted")
	}
}

// TestStormInMemoryClean runs a small fault-free in-memory storm: the
// baseline sanity check that the harness itself (recorder, reference
// replay, metrics) is sound before any chaos is layered on.
func TestStormInMemoryClean(t *testing.T) {
	baseline := runtime.NumGoroutine()
	res, err := Run(Options{
		Devices:         8,
		FramesPerDevice: 2,
		Seed:            7,
		ScrapeEvery:     10 * time.Millisecond, // fast storm: make sure mid-storm scrapes land
		Logf:            t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.CheckInvariants(); err != nil {
		t.Errorf("clean storm violated invariants: %v", err)
	}
	if res.StatusCounts[200] == 0 {
		t.Errorf("no 200s recorded: %v", res.StatusCounts)
	}
	if res.ServerMetrics == nil || res.ServerChunks == 0 {
		t.Errorf("final reconcile scrape missing: chunks=%d", res.ServerChunks)
	}
	if res.ServerChunks != res.DistinctAckedChunks {
		t.Errorf("server chunks %d != distinct acked %d", res.ServerChunks, res.DistinctAckedChunks)
	}
	if res.NetErrors != 0 {
		t.Errorf("fault-free storm saw %d net errors", res.NetErrors)
	}
	if res.FramesPerSec <= 0 || res.P99Latency <= 0 || res.PeakRSSBytes <= 0 {
		t.Errorf("metrics not populated: fps=%v p99=%v rss=%v",
			res.FramesPerSec, res.P99Latency, res.PeakRSSBytes)
	}
	waitGoroutines(t, baseline)
}

// TestStormInvariants is the pinned storm: a ~200-device swarm with every
// fault type enabled, admission control and rate limiting squeezing the
// collector, per-request deadlines shedding slow-loris writes, idle
// eviction reclaiming sessions mid-storm, and one hard kill-and-restart
// while uploads are in flight. The collector must degrade gracefully:
// documented statuses only, every sink drains, the recovered /fleet is
// byte-identical to a fault-free reference over the same acked chunks,
// and no sessions or goroutines leak.
func TestStormInvariants(t *testing.T) {
	devices := 200
	if testing.Short() {
		devices = 120
	}
	baseline := runtime.NumGoroutine()
	res, err := Run(Options{
		Devices:         devices,
		FramesPerDevice: 2,
		Faults:          AllFaults(),
		Seed:            42,
		DataDir:         t.TempDir(),
		MaxSessions:     64,
		// The chunk rate is per device: burst 1 at 5/s means a device's
		// back-to-back chunks trip a 429 and must honor Retry-After.
		MaxChunksPerSec: 5,
		ChunkBurst:      1,
		IdleTimeout:     250 * time.Millisecond,
		ReadTimeout:     150 * time.Millisecond,
		WriteTimeout:    time.Second,
		KillAfterChunks: 100,
		Stragglers:      0.05,
		StallFor:        300 * time.Millisecond,
		Logf:            t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("storm result: %d frames in %v (%.0f frames/s), p99 %v, rss %d MiB",
		res.Frames, res.Elapsed.Round(time.Millisecond), res.FramesPerSec,
		res.P99Latency.Round(time.Microsecond), res.PeakRSSBytes>>20)
	t.Logf("statuses: %v; faults: %v; net errors: %d; acked: %d",
		res.StatusCounts, res.FaultsInjected, res.NetErrors, res.AckedChunks)
	t.Logf("restarts: %d; evictions: %d; resurrections: %d; recovered: %d sessions / %d chunks",
		res.Restarts, res.Evictions, res.Resurrections, res.RecoveredSessions, res.RecoveredChunks)

	if err := res.CheckInvariants(); err != nil {
		t.Error(err)
	}
	if res.Restarts != 1 {
		t.Errorf("restarts = %d, want exactly 1 mid-storm kill", res.Restarts)
	}
	for _, fault := range []string{
		faultDisconnect, faultSlowLoris, faultCorrupt,
		faultDropResponse, faultDuplicate, faultReplayStale,
	} {
		if res.FaultsInjected[fault] == 0 {
			t.Errorf("fault %q never fired — the storm did not exercise it", fault)
		}
	}
	if res.StatusCounts[429] == 0 {
		t.Error("no 429s — the rate limiter never engaged under swarm load")
	}
	if res.StatusCounts[503] == 0 {
		t.Error("no 503s — the session cap never engaged under swarm load")
	}
	if res.RecoveredChunks == 0 {
		t.Error("final recovery replayed no chunks — the durability leg never ran")
	}
	if res.Evictions == 0 {
		t.Error("no sessions were evicted — idle eviction never engaged under cap pressure")
	}
	if res.ScrapeSamples == 0 {
		t.Error("the /metrics scrape loop never sampled a multi-second storm")
	}
	if res.ServerMetrics == nil || res.ServerChunks == 0 {
		t.Errorf("final reconcile scrape missing: chunks=%d", res.ServerChunks)
	}
	waitGoroutines(t, baseline)
}

// TestStormShardedInvariants drives the consistent-hash ring end to end
// under fire: a 4-shard collector ring behind the aggregator gateway, every
// fault type enabled, WAL segment rotation on, and a mid-storm hard kill of
// shard 0 while the other three keep serving. The bar is the same as the
// single-collector storm — documented statuses only (502 now included: the
// gateway's dead-shard answer), every sink drains, and the gateway's merged
// /fleet after per-shard WAL recovery is byte-identical to a fault-free
// single collector folding the same acked chunks.
func TestStormShardedInvariants(t *testing.T) {
	devices := 64
	if testing.Short() {
		devices = 48
	}
	baseline := runtime.NumGoroutine()
	res, err := Run(Options{
		Devices:         devices,
		FramesPerDevice: 2,
		Faults:          AllFaults(),
		Seed:            42,
		Shards:          4,
		DataDir:         t.TempDir(),
		SegmentBytes:    4096, // rotation + compaction under fire
		IdleTimeout:     250 * time.Millisecond,
		ReadTimeout:     150 * time.Millisecond,
		WriteTimeout:    time.Second,
		KillAfterChunks: 40,
		Stragglers:      0.05,
		StallFor:        300 * time.Millisecond,
		Logf:            t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("sharded storm: %d frames in %v (%.0f frames/s) across %d shards, p99 %v",
		res.Frames, res.Elapsed.Round(time.Millisecond), res.FramesPerSec, res.Shards,
		res.P99Latency.Round(time.Microsecond))
	t.Logf("statuses: %v; faults: %v; recovered: %d sessions / %d chunks",
		res.StatusCounts, res.FaultsInjected, res.RecoveredSessions, res.RecoveredChunks)

	if err := res.CheckInvariants(); err != nil {
		t.Error(err)
	}
	if res.Shards != 4 {
		t.Errorf("result shards = %d, want 4", res.Shards)
	}
	if res.Restarts != 1 {
		t.Errorf("restarts = %d, want exactly 1 mid-storm shard kill", res.Restarts)
	}
	if res.RecoveredChunks == 0 {
		t.Error("final recovery replayed no chunks — per-shard WAL recovery never ran")
	}
	if res.RecoveredSessions == 0 {
		t.Error("final recovery restored no sessions")
	}
	if len(res.LatencyHist) == 0 {
		t.Error("no latency histogram recorded")
	}
	if res.ScrapeSamples == 0 {
		t.Error("the /metrics scrape loop never sampled the sharded storm")
	}
	if res.ServerMetrics == nil {
		t.Fatal("final reconcile scrape missing")
	}
	if res.ServerChunks != res.DistinctAckedChunks {
		t.Errorf("post-recovery shard counters %d != distinct acked %d",
			res.ServerChunks, res.DistinctAckedChunks)
	}
	waitGoroutines(t, baseline)
}

// TestLatencyHistogram pins the time-bucketed latency summary: samples land
// in their completion window, the drain tail clamps into the last bucket,
// and per-bucket quantiles are computed over that window alone.
func TestLatencyHistogram(t *testing.T) {
	if latencyHistogram(nil, nil, time.Second, 8) != nil {
		t.Error("empty histogram not nil")
	}
	offsets := []time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond, // bucket 0
		150 * time.Millisecond, // bucket 1
		999 * time.Millisecond, // past elapsed: clamps to last bucket
	}
	lats := []time.Duration{
		1 * time.Millisecond, 3 * time.Millisecond,
		50 * time.Millisecond,
		7 * time.Millisecond,
	}
	hist := latencyHistogram(offsets, lats, 800*time.Millisecond, 8)
	if len(hist) != 8 {
		t.Fatalf("got %d buckets, want 8", len(hist))
	}
	if hist[0].Count != 2 || hist[0].MaxNs != (3*time.Millisecond).Nanoseconds() {
		t.Errorf("bucket 0 = %+v, want 2 samples max 3ms", hist[0])
	}
	if hist[0].StartMs != 0 || hist[0].EndMs != 100 {
		t.Errorf("bucket 0 window = [%d, %d)ms, want [0, 100)", hist[0].StartMs, hist[0].EndMs)
	}
	if hist[1].Count != 1 || hist[1].P99Ns != (50*time.Millisecond).Nanoseconds() {
		t.Errorf("bucket 1 = %+v, want the 50ms sample", hist[1])
	}
	if hist[7].Count != 1 || hist[7].MaxNs != (7*time.Millisecond).Nanoseconds() {
		t.Errorf("last bucket = %+v, want the clamped drain-tail sample", hist[7])
	}
	total := 0
	for _, b := range hist {
		total += b.Count
	}
	if total != len(lats) {
		t.Errorf("histogram holds %d samples, want %d", total, len(lats))
	}
}

// TestHistQuantileNs pins the bucketed quantile read-back: the storm's
// latency summaries share obs.LatencyBounds with the collectors'
// exposition histograms, and a sample sitting exactly on a bound must
// come back as that bound in nanoseconds with no float drift.
func TestHistQuantileNs(t *testing.T) {
	h := obs.NewHistogram(obs.LatencyBounds())
	if got := histQuantileNs(h, 0.99); got != 0 {
		t.Errorf("empty histogram p99 = %d, want 0", got)
	}
	h.Observe(0.05) // exactly the 50ms bound
	if got := histQuantileNs(h, 0.99); got != (50 * time.Millisecond).Nanoseconds() {
		t.Errorf("p99 = %dns, want exactly 50ms", got)
	}
}

// TestCheckInvariantsReportsAll pins the verdict wording for each failure.
func TestCheckInvariantsReportsAll(t *testing.T) {
	r := &Result{
		UndocumentedStatuses: []int{418},
		SinkErrors:           []string{"dev-0001: boom"},
		LeakedSessions:       2,
		RefReplayRejects:     1,
		FleetLive:            []byte("a"),
		FleetRef:             []byte("b"),
	}
	err := r.CheckInvariants()
	if err == nil {
		t.Fatal("broken result passed")
	}
	for _, want := range []string{"418", "drain", "leaked", "reference replay", "differs"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("verdict missing %q: %v", want, err)
		}
	}
	if (&Result{}).CheckInvariants() != nil {
		t.Error("clean result failed")
	}

	// The reconcile pillar: counter drift is a violation on its own...
	drifted := &Result{
		ServerMetrics:       map[string]float64{"mlexray_ingest_chunks_total": 3},
		ServerChunks:        3,
		DistinctAckedChunks: 4,
	}
	if err := drifted.CheckInvariants(); err == nil || !strings.Contains(err.Error(), "reconcile") {
		t.Errorf("counter drift not reported: %v", err)
	}
	// ...but only when every sink drained (a given-up sink legitimately
	// leaves server-logged chunks no client acked) and the scrape ran.
	drifted.SinkErrors = []string{"dev-0001: gave up"}
	if err := drifted.CheckInvariants(); err != nil && strings.Contains(err.Error(), "reconcile") {
		t.Errorf("reconcile reported despite undrained sinks: %v", err)
	}
	unscraped := &Result{DistinctAckedChunks: 4}
	if err := unscraped.CheckInvariants(); err != nil {
		t.Errorf("reconcile reported without a scrape: %v", err)
	}
}
