package imaging

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mlexray/internal/tensor"
)

func randomImage(rng *rand.Rand, w, h, c int) *Image {
	im := NewImage(w, h, c)
	for i := range im.Pix {
		im.Pix[i] = uint8(rng.Intn(256))
	}
	return im
}

func imagesEqual(a, b *Image) bool {
	if a.W != b.W || a.H != b.H || a.C != b.C {
		return false
	}
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			return false
		}
	}
	return true
}

func TestAtSet(t *testing.T) {
	im := NewImage(4, 3, 3)
	im.Set(2, 1, 1, 77)
	if im.At(2, 1, 1) != 77 {
		t.Error("At/Set round trip failed")
	}
	if im.At(0, 0, 0) != 0 {
		t.Error("untouched pixel non-zero")
	}
}

func TestSwapRBInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	im := randomImage(rng, 5, 4, 3)
	twice := SwapRB(SwapRB(im))
	if !imagesEqual(im, twice) {
		t.Error("SwapRB twice is not identity")
	}
	one := SwapRB(im)
	if one.At(0, 0, 0) != im.At(0, 0, 2) || one.At(0, 0, 2) != im.At(0, 0, 0) {
		t.Error("SwapRB did not exchange channels 0 and 2")
	}
	if one.At(0, 0, 1) != im.At(0, 0, 1) {
		t.Error("SwapRB disturbed the middle channel")
	}
}

func TestSwapRBGrayNoop(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	im := randomImage(rng, 3, 3, 1)
	if !imagesEqual(im, SwapRB(im)) {
		t.Error("SwapRB should be a no-op on single-channel images")
	}
}

func TestToOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	im := randomImage(rng, 4, 4, 3)
	if !imagesEqual(ToOrder(im, RGB, RGB), im) {
		t.Error("same-order conversion changed pixels")
	}
	if !imagesEqual(ToOrder(im, RGB, BGR), SwapRB(im)) {
		t.Error("RGB->BGR should swap")
	}
	if RGB.String() != "RGB" || BGR.String() != "BGR" {
		t.Error("ChannelOrder.String")
	}
}

func TestYUVRGBRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	im := randomImage(rng, 8, 8, 3)
	back := YUVToRGB(RGBToYUV(im))
	var maxDiff int
	for i := range im.Pix {
		d := int(im.Pix[i]) - int(back.Pix[i])
		if d < 0 {
			d = -d
		}
		if d > maxDiff {
			maxDiff = d
		}
	}
	// Chroma subsample-free conversion should round-trip within a few
	// quantization steps (saturated colours clip).
	if maxDiff > 6 {
		t.Errorf("YUV round-trip max diff = %d", maxDiff)
	}
}

func TestYUVGrayIsY(t *testing.T) {
	im := NewImage(1, 1, 3)
	// Pure gray: R=G=B=100 should give U=V=128 and Y=100.
	im.Pix[0], im.Pix[1], im.Pix[2] = 100, 100, 100
	yuv := RGBToYUV(im)
	if yuv.Pix[0] != 100 || yuv.Pix[1] != 128 || yuv.Pix[2] != 128 {
		t.Errorf("gray YUV = %v", yuv.Pix)
	}
}

func TestRotateIdentities(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	im := randomImage(rng, 6, 4, 3)
	if !imagesEqual(Rotate(im, Rotate0), im) {
		t.Error("Rotate0 changed image")
	}
	r := Rotate(im, Rotate90)
	if r.W != im.H || r.H != im.W {
		t.Errorf("Rotate90 dims %dx%d", r.W, r.H)
	}
	if !imagesEqual(Rotate(Rotate(im, Rotate180), Rotate180), im) {
		t.Error("Rotate180 twice is not identity")
	}
	if !imagesEqual(Rotate(Rotate(im, Rotate90), Rotate270), im) {
		t.Error("rot90 then rot270 is not identity")
	}
}

// Property: four quarter turns return the original image.
func TestRotateFourTimesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		im := randomImage(rng, 1+rng.Intn(7), 1+rng.Intn(7), 3)
		r := im
		for i := 0; i < 4; i++ {
			r = Rotate(r, Rotate90)
		}
		return imagesEqual(im, r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFlipsAreInvolutions(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	im := randomImage(rng, 5, 7, 3)
	if !imagesEqual(FlipH(FlipH(im)), im) {
		t.Error("FlipH twice is not identity")
	}
	if !imagesEqual(FlipV(FlipV(im)), im) {
		t.Error("FlipV twice is not identity")
	}
	if imagesEqual(FlipH(im), im) {
		t.Error("FlipH left image unchanged (degenerate test image?)")
	}
}

func TestCenterCrop(t *testing.T) {
	im := NewImage(6, 6, 1)
	im.Set(2, 2, 0, 9)
	c := CenterCrop(im, 2, 2)
	if c.W != 2 || c.H != 2 {
		t.Fatalf("crop dims %dx%d", c.W, c.H)
	}
	if c.At(0, 0, 0) != 9 {
		t.Error("crop not centred")
	}
}

func TestResizeIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	im := randomImage(rng, 8, 8, 3)
	for _, k := range []ResizeKind{ResizeArea, ResizeBilinear, ResizeNearest} {
		if !imagesEqual(Resize(im, 8, 8, k), im) {
			t.Errorf("%v: identity resize changed pixels", k)
		}
	}
}

// Property: resizing a constant image yields a constant image for every
// filter.
func TestResizeConstantProperty(t *testing.T) {
	f := func(val uint8, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		im := NewImage(4+rng.Intn(12), 4+rng.Intn(12), 3)
		for i := range im.Pix {
			im.Pix[i] = val
		}
		for _, k := range []ResizeKind{ResizeArea, ResizeBilinear, ResizeNearest} {
			out := Resize(im, 2+rng.Intn(10), 2+rng.Intn(10), k)
			for _, p := range out.Pix {
				if p != val {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Area averaging over an integer downsample factor preserves the mean
// exactly (up to rounding), the property that makes it the alias-free
// reference downsampler.
func TestAreaResizePreservesMean(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	im := randomImage(rng, 32, 32, 1)
	out := resizeArea(im, 8, 8)
	var inSum, outSum float64
	for _, p := range im.Pix {
		inSum += float64(p)
	}
	for _, p := range out.Pix {
		outSum += float64(p)
	}
	inMean := inSum / float64(len(im.Pix))
	outMean := outSum / float64(len(out.Pix))
	if math.Abs(inMean-outMean) > 1.0 {
		t.Errorf("area resize mean drift: %v -> %v", inMean, outMean)
	}
}

// Bilinear downsampling of a high-frequency checkerboard aliases badly while
// area averaging blends it to gray — the §4.3 resizing-bug mechanism.
func TestBilinearAliasesCheckerboard(t *testing.T) {
	im := NewImage(32, 32, 1)
	for y := 0; y < 32; y++ {
		for x := 0; x < 32; x++ {
			if x%2 == 0 {
				im.Set(x, y, 0, 255)
			}
		}
	}
	// A non-integer downsample factor: bilinear sample points drift across
	// the stripe phase and alias, while area averaging stays at the mean.
	area := Resize(im, 9, 9, ResizeArea)
	bil := Resize(im, 9, 9, ResizeBilinear)
	// Area output stays close to the 127.5 stripe mean (the 3.56px window
	// covers one extra stripe at most); bilinear keeps near-extreme values.
	for _, p := range area.Pix {
		if p < 100 || p > 155 {
			t.Fatalf("area resize should blend stripes toward gray, got %d", p)
		}
	}
	var areaDev, bilDev float64
	for i := range area.Pix {
		areaDev += math.Abs(float64(area.Pix[i]) - 127.5)
		bilDev += math.Abs(float64(bil.Pix[i]) - 127.5)
	}
	if bilDev <= 1.5*areaDev {
		t.Errorf("expected bilinear to alias more: area=%v bilinear=%v", areaDev, bilDev)
	}
}

func TestResizeKindStringParse(t *testing.T) {
	for _, k := range []ResizeKind{ResizeArea, ResizeBilinear, ResizeNearest} {
		back, err := ParseResizeKind(k.String())
		if err != nil || back != k {
			t.Errorf("round trip %v: %v, %v", k, back, err)
		}
	}
	if _, err := ParseResizeKind("lanczos"); err == nil {
		t.Error("ParseResizeKind accepted unknown filter")
	}
}

func TestNormRangeApply(t *testing.T) {
	if v := NormSymmetric.Apply(0); v != -1 {
		t.Errorf("sym(0) = %v", v)
	}
	if v := NormSymmetric.Apply(255); v != 1 {
		t.Errorf("sym(255) = %v", v)
	}
	if v := NormUnit.Apply(255); v != 1 {
		t.Errorf("unit(255) = %v", v)
	}
	if v := NormRaw.Apply(200); v != 200 {
		t.Errorf("raw(200) = %v", v)
	}
}

func TestToTensorShapeAndValues(t *testing.T) {
	im := NewImage(3, 2, 3)
	im.Set(1, 0, 2, 255)
	tt := ToTensor(im, NormUnit)
	if !tensor.SameShape(tt.Shape, []int{1, 2, 3, 3}) {
		t.Fatalf("shape = %v", tt.Shape)
	}
	if got := tt.At(0, 0, 1, 2); got != 1 {
		t.Errorf("normalized value = %v", got)
	}
}

func TestFromToTensorRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	im := randomImage(rng, 6, 5, 3)
	for _, nr := range []NormRange{NormSymmetric, NormUnit, NormRaw} {
		back := FromTensor(ToTensor(im, nr), nr)
		for i := range im.Pix {
			d := int(im.Pix[i]) - int(back.Pix[i])
			if d < -1 || d > 1 {
				t.Fatalf("%v round-trip diff %d at %d", nr, d, i)
			}
		}
	}
}

func TestToTensorU8(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	im := randomImage(rng, 4, 4, 3)
	tt := ToTensorU8(im)
	if !tensor.SameShape(tt.Shape, []int{1, 4, 4, 3}) {
		t.Fatalf("shape = %v", tt.Shape)
	}
	for i := range im.Pix {
		if tt.U[i] != im.Pix[i] {
			t.Fatal("ToTensorU8 changed pixel data")
		}
	}
}

func TestRotationMetadata(t *testing.T) {
	if Rotate90.Degrees() != 90 || Rotate270.Degrees() != 270 {
		t.Error("Degrees")
	}
	if Rotate90.String() != "rot90" || Rotate0.String() != "rot0" {
		t.Error("String")
	}
}
