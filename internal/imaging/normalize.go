package imaging

import (
	"fmt"

	"mlexray/internal/tensor"
)

// NormRange describes the numeric range a model expects its float input in.
// The paper's "numerical conversion" bug class: the training framework
// converted uint8 pixels to, say, [-1, 1] deep inside its input pipeline,
// the app developer guesses [0, 1], the image merely looks washed out to the
// network, and accuracy silently drops (§2, §4.3).
type NormRange struct {
	Lo, Hi float64
}

// Common normalization conventions used by the model zoo (mirroring the
// paper's examples: MobileNet wants [-1,1], DenseNet wants [0,1]).
var (
	NormSymmetric = NormRange{-1, 1}
	NormUnit      = NormRange{0, 1}
	NormRaw       = NormRange{0, 255}
)

func (n NormRange) String() string { return fmt.Sprintf("[%g,%g]", n.Lo, n.Hi) }

// Apply maps a uint8 value into the range.
func (n NormRange) Apply(v uint8) float32 {
	return float32(n.Lo + (n.Hi-n.Lo)*float64(v)/255.0)
}

// ToTensor converts an image into a [1, H, W, C] float32 NHWC tensor with
// the given normalization. This is the numerical-conversion step of the
// preprocessing pipeline.
func ToTensor(im *Image, nr NormRange) *tensor.Tensor {
	t := tensor.New(tensor.F32, 1, im.H, im.W, im.C)
	for i, p := range im.Pix {
		t.F[i] = nr.Apply(p)
	}
	return t
}

// ToTensorU8 converts an image into a [1, H, W, C] uint8 tensor (the raw
// form quantized models with an in-graph Quantize node consume).
func ToTensorU8(im *Image) *tensor.Tensor {
	t := tensor.New(tensor.U8, 1, im.H, im.W, im.C)
	copy(t.U, im.Pix)
	return t
}

// FromTensor converts a [1, H, W, C] (or [H, W, C]) float tensor holding
// values in nr back into an 8-bit image, clamping out-of-range values. Used
// by assertion functions that need to compare preprocessing outputs in pixel
// space and by the data playback tooling.
func FromTensor(t *tensor.Tensor, nr NormRange) *Image {
	shape := t.Shape
	if len(shape) == 4 {
		if shape[0] != 1 {
			panic(fmt.Sprintf("imaging: FromTensor batch dim %d", shape[0]))
		}
		shape = shape[1:]
	}
	if len(shape) != 3 {
		panic(fmt.Sprintf("imaging: FromTensor rank %d", len(shape)))
	}
	h, w, c := shape[0], shape[1], shape[2]
	im := NewImage(w, h, c)
	scale := 255.0 / (nr.Hi - nr.Lo)
	for i := range im.Pix {
		im.Pix[i] = clamp8((float64(t.F[i]) - nr.Lo) * scale)
	}
	return im
}
