// Package imaging is the image-preprocessing substrate for the edge and
// reference inference pipelines. It owns exactly the operations the paper
// identifies as error-prone during deployment (§2): channel extraction and
// ordering, resizing, numerical conversion/normalization, and orientation.
//
// Images are interleaved HWC uint8, the layout camera stacks hand to
// applications. The package provides both correct implementations and the
// building blocks from which an edge pipeline can be (mis)configured, e.g.
// bilinear resampling where the training pipeline used area averaging.
package imaging

import "fmt"

// Image is an interleaved 8-bit image with C channels (C is 1 or 3
// everywhere in this repository).
type Image struct {
	W, H, C int
	Pix     []uint8 // len = W*H*C, row-major, interleaved channels
}

// NewImage allocates a zeroed image.
func NewImage(w, h, c int) *Image {
	if w < 0 || h < 0 || c <= 0 {
		panic(fmt.Sprintf("imaging: bad dims %dx%dx%d", w, h, c))
	}
	return &Image{W: w, H: h, C: c, Pix: make([]uint8, w*h*c)}
}

// At returns channel ch of pixel (x, y).
func (im *Image) At(x, y, ch int) uint8 {
	return im.Pix[(y*im.W+x)*im.C+ch]
}

// Set stores channel ch of pixel (x, y).
func (im *Image) Set(x, y, ch int, v uint8) {
	im.Pix[(y*im.W+x)*im.C+ch] = v
}

// Clone returns a deep copy.
func (im *Image) Clone() *Image {
	c := &Image{W: im.W, H: im.H, C: im.C, Pix: make([]uint8, len(im.Pix))}
	copy(c.Pix, im.Pix)
	return c
}

// ChannelOrder names how colour channels are interleaved in an image or
// expected by a model. Mixing these up is the paper's "channel extraction"
// bug class: it raises no runtime error but silently degrades accuracy.
type ChannelOrder int

const (
	RGB ChannelOrder = iota
	BGR
)

func (c ChannelOrder) String() string {
	if c == BGR {
		return "BGR"
	}
	return "RGB"
}

// SwapRB returns a copy with the first and third channels exchanged
// (RGB<->BGR). Single-channel images are returned unchanged (copied).
func SwapRB(im *Image) *Image {
	out := im.Clone()
	if im.C < 3 {
		return out
	}
	for i := 0; i < len(out.Pix); i += out.C {
		out.Pix[i], out.Pix[i+2] = out.Pix[i+2], out.Pix[i]
	}
	return out
}

// ToOrder converts an image known to be in `from` order into `to` order.
func ToOrder(im *Image, from, to ChannelOrder) *Image {
	if from == to {
		return im.Clone()
	}
	return SwapRB(im)
}

// YUVToRGB converts a 3-channel image holding BT.601 full-range YUV (as
// produced by phone camera stacks) into RGB. This models the channel
// extraction step an Android app performs on camera buffers; getting the
// coefficients or the order wrong is a real-world bug the framework's
// channel assertion catches.
func YUVToRGB(im *Image) *Image {
	if im.C != 3 {
		panic("imaging: YUVToRGB needs 3 channels")
	}
	out := NewImage(im.W, im.H, 3)
	for i := 0; i < len(im.Pix); i += 3 {
		y := float64(im.Pix[i])
		u := float64(im.Pix[i+1]) - 128
		v := float64(im.Pix[i+2]) - 128
		out.Pix[i] = clamp8(y + 1.402*v)
		out.Pix[i+1] = clamp8(y - 0.344136*u - 0.714136*v)
		out.Pix[i+2] = clamp8(y + 1.772*u)
	}
	return out
}

// RGBToYUV is the inverse conversion, used by the dataset generators to
// emulate sensor output and by round-trip tests.
func RGBToYUV(im *Image) *Image {
	if im.C != 3 {
		panic("imaging: RGBToYUV needs 3 channels")
	}
	out := NewImage(im.W, im.H, 3)
	for i := 0; i < len(im.Pix); i += 3 {
		r := float64(im.Pix[i])
		g := float64(im.Pix[i+1])
		b := float64(im.Pix[i+2])
		out.Pix[i] = clamp8(0.299*r + 0.587*g + 0.114*b)
		out.Pix[i+1] = clamp8(-0.168736*r - 0.331264*g + 0.5*b + 128)
		out.Pix[i+2] = clamp8(0.5*r - 0.418688*g - 0.081312*b + 128)
	}
	return out
}

func clamp8(v float64) uint8 {
	if v <= 0 {
		return 0
	}
	if v >= 255 {
		return 255
	}
	return uint8(v + 0.5)
}

// Rotation is a quarter-turn applied to an image. Edge devices capture in
// whatever orientation the user holds them; training data is always upright.
type Rotation int

const (
	Rotate0 Rotation = iota
	Rotate90
	Rotate180
	Rotate270
)

func (r Rotation) String() string {
	switch r {
	case Rotate90:
		return "rot90"
	case Rotate180:
		return "rot180"
	case Rotate270:
		return "rot270"
	default:
		return "rot0"
	}
}

// Degrees returns the rotation in degrees, the unit the orientation sensor
// telemetry records report.
func (r Rotation) Degrees() int { return int(r) * 90 }

// Rotate returns a rotated copy (clockwise quarter turns).
func Rotate(im *Image, r Rotation) *Image {
	switch r {
	case Rotate0:
		return im.Clone()
	case Rotate180:
		out := NewImage(im.W, im.H, im.C)
		for y := 0; y < im.H; y++ {
			for x := 0; x < im.W; x++ {
				for ch := 0; ch < im.C; ch++ {
					out.Set(im.W-1-x, im.H-1-y, ch, im.At(x, y, ch))
				}
			}
		}
		return out
	case Rotate90:
		out := NewImage(im.H, im.W, im.C)
		for y := 0; y < im.H; y++ {
			for x := 0; x < im.W; x++ {
				for ch := 0; ch < im.C; ch++ {
					out.Set(im.H-1-y, x, ch, im.At(x, y, ch))
				}
			}
		}
		return out
	case Rotate270:
		out := NewImage(im.H, im.W, im.C)
		for y := 0; y < im.H; y++ {
			for x := 0; x < im.W; x++ {
				for ch := 0; ch < im.C; ch++ {
					out.Set(y, im.W-1-x, ch, im.At(x, y, ch))
				}
			}
		}
		return out
	}
	panic("imaging: bad rotation")
}

// FlipH returns a horizontally mirrored copy.
func FlipH(im *Image) *Image {
	out := NewImage(im.W, im.H, im.C)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			for ch := 0; ch < im.C; ch++ {
				out.Set(im.W-1-x, y, ch, im.At(x, y, ch))
			}
		}
	}
	return out
}

// FlipV returns a vertically mirrored copy.
func FlipV(im *Image) *Image {
	out := NewImage(im.W, im.H, im.C)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			for ch := 0; ch < im.C; ch++ {
				out.Set(x, im.H-1-y, ch, im.At(x, y, ch))
			}
		}
	}
	return out
}

// CenterCrop returns the centred w×h sub-image. Panics if the crop exceeds
// the source.
func CenterCrop(im *Image, w, h int) *Image {
	if w > im.W || h > im.H {
		panic(fmt.Sprintf("imaging: crop %dx%d exceeds %dx%d", w, h, im.W, im.H))
	}
	x0 := (im.W - w) / 2
	y0 := (im.H - h) / 2
	out := NewImage(w, h, im.C)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			for ch := 0; ch < im.C; ch++ {
				out.Set(x, y, ch, im.At(x0+x, y0+y, ch))
			}
		}
	}
	return out
}
