package imaging

import "fmt"

// ResizeKind selects the resampling filter. The paper's "resizing" bug class
// (§2, §4.3) is using bilinear resampling at deployment where the training
// pipeline downsampled with area averaging — aliasing then costs top-1
// accuracy with no runtime error.
type ResizeKind int

const (
	ResizeArea ResizeKind = iota // area averaging (anti-aliased downsample)
	ResizeBilinear
	ResizeNearest
)

func (k ResizeKind) String() string {
	switch k {
	case ResizeArea:
		return "area"
	case ResizeBilinear:
		return "bilinear"
	case ResizeNearest:
		return "nearest"
	default:
		return fmt.Sprintf("resize(%d)", int(k))
	}
}

// ParseResizeKind converts a name back into a ResizeKind.
func ParseResizeKind(s string) (ResizeKind, error) {
	switch s {
	case "area":
		return ResizeArea, nil
	case "bilinear":
		return ResizeBilinear, nil
	case "nearest":
		return ResizeNearest, nil
	}
	return ResizeArea, fmt.Errorf("imaging: unknown resize kind %q", s)
}

// Resize resamples im to w×h using the given filter.
func Resize(im *Image, w, h int, kind ResizeKind) *Image {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("imaging: resize to %dx%d", w, h))
	}
	if w == im.W && h == im.H {
		return im.Clone()
	}
	switch kind {
	case ResizeArea:
		return resizeArea(im, w, h)
	case ResizeBilinear:
		return resizeBilinear(im, w, h)
	case ResizeNearest:
		return resizeNearest(im, w, h)
	}
	panic("imaging: bad resize kind")
}

// resizeArea performs box-filter (area averaging) resampling: each output
// pixel is the average of the exact source rectangle it covers. This is the
// anti-aliased downsampler training pipelines use; it preserves the mean of
// the image (a property the tests assert).
func resizeArea(im *Image, w, h int) *Image {
	out := NewImage(w, h, im.C)
	sx := float64(im.W) / float64(w)
	sy := float64(im.H) / float64(h)
	for oy := 0; oy < h; oy++ {
		y0 := float64(oy) * sy
		y1 := y0 + sy
		for ox := 0; ox < w; ox++ {
			x0 := float64(ox) * sx
			x1 := x0 + sx
			for ch := 0; ch < im.C; ch++ {
				var sum, area float64
				for iy := int(y0); iy < im.H && float64(iy) < y1; iy++ {
					// Vertical overlap of source row iy with [y0, y1).
					oy0 := maxf(float64(iy), y0)
					oy1 := minf(float64(iy+1), y1)
					wy := oy1 - oy0
					if wy <= 0 {
						continue
					}
					for ix := int(x0); ix < im.W && float64(ix) < x1; ix++ {
						ox0 := maxf(float64(ix), x0)
						ox1 := minf(float64(ix+1), x1)
						wx := ox1 - ox0
						if wx <= 0 {
							continue
						}
						sum += float64(im.At(ix, iy, ch)) * wx * wy
						area += wx * wy
					}
				}
				if area > 0 {
					out.Set(ox, oy, ch, clamp8(sum/area))
				}
			}
		}
	}
	return out
}

// resizeBilinear samples with the half-pixel-centre convention and linear
// interpolation. When downsampling by large factors it only looks at the
// four neighbours of the sample point, producing the aliasing the paper
// blames for silent accuracy loss.
func resizeBilinear(im *Image, w, h int) *Image {
	out := NewImage(w, h, im.C)
	sx := float64(im.W) / float64(w)
	sy := float64(im.H) / float64(h)
	for oy := 0; oy < h; oy++ {
		fy := (float64(oy)+0.5)*sy - 0.5
		y0 := int(fy)
		if fy < 0 {
			y0 = 0
			fy = 0
		}
		y1 := y0 + 1
		if y1 >= im.H {
			y1 = im.H - 1
		}
		wy := fy - float64(y0)
		for ox := 0; ox < w; ox++ {
			fx := (float64(ox)+0.5)*sx - 0.5
			x0 := int(fx)
			if fx < 0 {
				x0 = 0
				fx = 0
			}
			x1 := x0 + 1
			if x1 >= im.W {
				x1 = im.W - 1
			}
			wx := fx - float64(x0)
			for ch := 0; ch < im.C; ch++ {
				v00 := float64(im.At(x0, y0, ch))
				v10 := float64(im.At(x1, y0, ch))
				v01 := float64(im.At(x0, y1, ch))
				v11 := float64(im.At(x1, y1, ch))
				top := v00 + (v10-v00)*wx
				bot := v01 + (v11-v01)*wx
				out.Set(ox, oy, ch, clamp8(top+(bot-top)*wy))
			}
		}
	}
	return out
}

func resizeNearest(im *Image, w, h int) *Image {
	out := NewImage(w, h, im.C)
	for oy := 0; oy < h; oy++ {
		iy := oy * im.H / h
		for ox := 0; ox < w; ox++ {
			ix := ox * im.W / w
			for ch := 0; ch < im.C; ch++ {
				out.Set(ox, oy, ch, im.At(ix, iy, ch))
			}
		}
	}
	return out
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
