// Package metrics implements the task-quality measures of the evaluation:
// top-1/top-k accuracy, detection mAP (greedy IoU matching with 11-point
// interpolated average precision), segmentation mIoU, and latency summary
// statistics.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Top1 returns the fraction of predictions matching labels.
func Top1(preds, labels []int) (float64, error) {
	if len(preds) != len(labels) {
		return 0, fmt.Errorf("metrics: %d predictions vs %d labels", len(preds), len(labels))
	}
	if len(preds) == 0 {
		return 0, fmt.Errorf("metrics: empty evaluation")
	}
	hit := 0
	for i := range preds {
		if preds[i] == labels[i] {
			hit++
		}
	}
	return float64(hit) / float64(len(preds)), nil
}

// TopK returns the fraction of samples whose label appears in the sample's
// top-k scored classes. scores is [n][classes].
func TopK(scores [][]float32, labels []int, k int) (float64, error) {
	if len(scores) != len(labels) {
		return 0, fmt.Errorf("metrics: %d score rows vs %d labels", len(scores), len(labels))
	}
	if len(scores) == 0 || k < 1 {
		return 0, fmt.Errorf("metrics: empty evaluation or k=%d", k)
	}
	hit := 0
	for i, row := range scores {
		type sc struct {
			c int
			v float32
		}
		order := make([]sc, len(row))
		for c, v := range row {
			order[c] = sc{c, v}
		}
		sort.Slice(order, func(a, b int) bool { return order[a].v > order[b].v })
		for j := 0; j < k && j < len(order); j++ {
			if order[j].c == labels[i] {
				hit++
				break
			}
		}
	}
	return float64(hit) / float64(len(scores)), nil
}

// Agreement returns the fraction of positions where two prediction slices
// agree — the validator's output-consistency measure between an edge
// pipeline and its reference.
func Agreement(a, b []int) (float64, error) {
	return Top1(a, b)
}

// GTBox is a ground-truth detection box for mAP evaluation.
type GTBox struct {
	Box   [4]float64 // cy, cx, h, w normalized
	Class int
}

// DetBox is one predicted detection for mAP evaluation.
type DetBox struct {
	Box   [4]float64
	Class int
	Score float64
	Image int // image index
}

// MeanAP computes mean average precision over foreground classes at the
// given IoU threshold, using 11-point interpolation (the PASCAL convention).
// gt is indexed per image.
func MeanAP(dets []DetBox, gt [][]GTBox, numClasses int, iouThresh float64) (float64, error) {
	if numClasses < 2 {
		return 0, fmt.Errorf("metrics: %d classes", numClasses)
	}
	var sumAP float64
	classesWithGT := 0
	for c := 1; c < numClasses; c++ {
		ap, hasGT := classAP(dets, gt, c, iouThresh)
		if hasGT {
			sumAP += ap
			classesWithGT++
		}
	}
	if classesWithGT == 0 {
		return 0, fmt.Errorf("metrics: no ground truth boxes")
	}
	return sumAP / float64(classesWithGT), nil
}

func classAP(dets []DetBox, gt [][]GTBox, class int, iouThresh float64) (float64, bool) {
	// Collect class detections sorted by score, and count class GT.
	var cls []DetBox
	for _, d := range dets {
		if d.Class == class {
			cls = append(cls, d)
		}
	}
	sort.Slice(cls, func(i, j int) bool { return cls[i].Score > cls[j].Score })
	totalGT := 0
	matched := make([][]bool, len(gt))
	for i, boxes := range gt {
		matched[i] = make([]bool, len(boxes))
		for _, g := range boxes {
			if g.Class == class {
				totalGT++
			}
		}
	}
	if totalGT == 0 {
		return 0, false
	}
	tp := make([]int, len(cls))
	for di, d := range cls {
		if d.Image < 0 || d.Image >= len(gt) {
			continue
		}
		bestIoU, bestG := 0.0, -1
		for gi, g := range gt[d.Image] {
			if g.Class != class || matched[d.Image][gi] {
				continue
			}
			if iou := boxIoU(d.Box, g.Box); iou > bestIoU {
				bestIoU, bestG = iou, gi
			}
		}
		if bestG >= 0 && bestIoU >= iouThresh {
			tp[di] = 1
			matched[d.Image][bestG] = true
		}
	}
	// Precision/recall curve.
	var cumTP, cumFP int
	precision := make([]float64, len(cls))
	recall := make([]float64, len(cls))
	for i := range cls {
		if tp[i] == 1 {
			cumTP++
		} else {
			cumFP++
		}
		precision[i] = float64(cumTP) / float64(cumTP+cumFP)
		recall[i] = float64(cumTP) / float64(totalGT)
	}
	// 11-point interpolation.
	var ap float64
	for _, r := range []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0} {
		var pMax float64
		for i := range cls {
			if recall[i] >= r && precision[i] > pMax {
				pMax = precision[i]
			}
		}
		ap += pMax / 11
	}
	return ap, true
}

func boxIoU(a, b [4]float64) float64 {
	ay0, ay1 := a[0]-a[2]/2, a[0]+a[2]/2
	ax0, ax1 := a[1]-a[3]/2, a[1]+a[3]/2
	by0, by1 := b[0]-b[2]/2, b[0]+b[2]/2
	bx0, bx1 := b[1]-b[3]/2, b[1]+b[3]/2
	iy := math.Min(ay1, by1) - math.Max(ay0, by0)
	ix := math.Min(ax1, bx1) - math.Max(ax0, bx0)
	if iy <= 0 || ix <= 0 {
		return 0
	}
	inter := iy * ix
	union := a[2]*a[3] + b[2]*b[3] - inter
	if union <= 0 {
		return 0
	}
	return inter / union
}

// MeanIoU computes segmentation mean intersection-over-union across classes
// present in the ground truth. pred and gt are flat label maps.
func MeanIoU(pred, gt []int32, numClasses int) (float64, error) {
	if len(pred) != len(gt) {
		return 0, fmt.Errorf("metrics: %d predictions vs %d labels", len(pred), len(gt))
	}
	inter := make([]int, numClasses)
	union := make([]int, numClasses)
	seen := make([]bool, numClasses)
	for i := range gt {
		p, g := pred[i], gt[i]
		if int(g) >= numClasses || g < 0 || int(p) >= numClasses || p < 0 {
			return 0, fmt.Errorf("metrics: label out of range (pred %d, gt %d)", p, g)
		}
		seen[g] = true
		if p == g {
			inter[g]++
			union[g]++
		} else {
			union[g]++
			union[p]++
		}
	}
	var sum float64
	n := 0
	for c := 0; c < numClasses; c++ {
		if !seen[c] {
			continue
		}
		if union[c] > 0 {
			sum += float64(inter[c]) / float64(union[c])
		}
		n++
	}
	if n == 0 {
		return 0, fmt.Errorf("metrics: no classes in ground truth")
	}
	return sum / float64(n), nil
}

// LatencySummary reports mean and (population) standard deviation.
type LatencySummary struct {
	Mean time.Duration
	Std  time.Duration
	N    int
}

// SummarizeLatency computes a LatencySummary.
func SummarizeLatency(ds []time.Duration) LatencySummary {
	if len(ds) == 0 {
		return LatencySummary{}
	}
	var sum float64
	for _, d := range ds {
		sum += float64(d)
	}
	mean := sum / float64(len(ds))
	var sq float64
	for _, d := range ds {
		dv := float64(d) - mean
		sq += dv * dv
	}
	return LatencySummary{
		Mean: time.Duration(mean),
		Std:  time.Duration(math.Sqrt(sq / float64(len(ds)))),
		N:    len(ds),
	}
}

func (s LatencySummary) String() string {
	return fmt.Sprintf("%.1f±%.1f ms", float64(s.Mean)/1e6, float64(s.Std)/1e6)
}
