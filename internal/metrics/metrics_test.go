package metrics

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestTop1(t *testing.T) {
	acc, err := Top1([]int{1, 2, 3, 4}, []int{1, 2, 0, 4})
	if err != nil || acc != 0.75 {
		t.Errorf("Top1 = %v, %v", acc, err)
	}
	if _, err := Top1([]int{1}, []int{1, 2}); err == nil {
		t.Error("accepted length mismatch")
	}
	if _, err := Top1(nil, nil); err == nil {
		t.Error("accepted empty input")
	}
}

func TestTopK(t *testing.T) {
	scores := [][]float32{
		{0.1, 0.5, 0.4}, // top2: classes 1, 2
		{0.7, 0.2, 0.1}, // top2: classes 0, 1
	}
	acc, err := TopK(scores, []int{2, 1}, 2)
	if err != nil || acc != 1 {
		t.Errorf("Top2 = %v, %v", acc, err)
	}
	acc, err = TopK(scores, []int{2, 1}, 1)
	if err != nil || acc != 0 {
		t.Errorf("Top1-via-TopK = %v, %v", acc, err)
	}
}

// Property: Top1 <= TopK for any k >= 1.
func TestTopKMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		scores := [][]float32{{0.2, 0.3, 0.5}, {0.6, 0.3, 0.1}, {0.1, 0.8, 0.1}}
		labels := []int{int(seed) & 1, (int(seed) >> 1) % 3, (int(seed) >> 2) % 3}
		if labels[0] < 0 {
			labels[0] = 0
		}
		a1, err := TopK(scores, labels, 1)
		if err != nil {
			return false
		}
		a2, err := TopK(scores, labels, 2)
		if err != nil {
			return false
		}
		return a2 >= a1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMeanAPPerfectDetections(t *testing.T) {
	gt := [][]GTBox{
		{{Box: [4]float64{0.5, 0.5, 0.2, 0.2}, Class: 1}},
		{{Box: [4]float64{0.3, 0.3, 0.2, 0.2}, Class: 2}},
	}
	dets := []DetBox{
		{Box: [4]float64{0.5, 0.5, 0.2, 0.2}, Class: 1, Score: 0.9, Image: 0},
		{Box: [4]float64{0.3, 0.3, 0.2, 0.2}, Class: 2, Score: 0.8, Image: 1},
	}
	ap, err := MeanAP(dets, gt, 3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ap-1) > 1e-9 {
		t.Errorf("perfect mAP = %v", ap)
	}
}

func TestMeanAPMissesAndFalsePositives(t *testing.T) {
	gt := [][]GTBox{
		{{Box: [4]float64{0.5, 0.5, 0.2, 0.2}, Class: 1}, {Box: [4]float64{0.8, 0.8, 0.1, 0.1}, Class: 1}},
	}
	// One true positive, one false positive far away; one GT missed.
	dets := []DetBox{
		{Box: [4]float64{0.5, 0.5, 0.2, 0.2}, Class: 1, Score: 0.9, Image: 0},
		{Box: [4]float64{0.1, 0.1, 0.1, 0.1}, Class: 1, Score: 0.8, Image: 0},
	}
	ap, err := MeanAP(dets, gt, 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if ap <= 0.2 || ap >= 0.8 {
		t.Errorf("partial mAP = %v, want mid-range", ap)
	}
	// No detections at all: mAP 0.
	ap, err = MeanAP(nil, gt, 2, 0.5)
	if err != nil || ap != 0 {
		t.Errorf("no-detection mAP = %v, %v", ap, err)
	}
	if _, err := MeanAP(dets, [][]GTBox{{}}, 2, 0.5); err == nil {
		t.Error("accepted ground truth with no boxes")
	}
}

func TestMeanAPDuplicateDetectionsPenalized(t *testing.T) {
	gt := [][]GTBox{{{Box: [4]float64{0.5, 0.5, 0.2, 0.2}, Class: 1}}}
	one := []DetBox{{Box: [4]float64{0.5, 0.5, 0.2, 0.2}, Class: 1, Score: 0.9, Image: 0}}
	dup := append(one, DetBox{Box: [4]float64{0.5, 0.5, 0.2, 0.2}, Class: 1, Score: 0.8, Image: 0})
	apOne, _ := MeanAP(one, gt, 2, 0.5)
	apDup, _ := MeanAP(dup, gt, 2, 0.5)
	if apDup > apOne {
		t.Errorf("duplicate detections should not raise AP (%v vs %v)", apDup, apOne)
	}
}

func TestMeanIoU(t *testing.T) {
	pred := []int32{0, 0, 1, 1, 2, 2}
	gt := []int32{0, 0, 1, 1, 2, 2}
	iou, err := MeanIoU(pred, gt, 3)
	if err != nil || iou != 1 {
		t.Errorf("perfect mIoU = %v, %v", iou, err)
	}
	pred = []int32{0, 0, 0, 0, 0, 0}
	iou, err = MeanIoU(pred, gt, 3)
	if err != nil {
		t.Fatal(err)
	}
	// class0: inter 2 / union 6 = 1/3; classes 1,2: 0.
	if math.Abs(iou-1.0/9.0) > 1e-9 {
		t.Errorf("all-background mIoU = %v", iou)
	}
	if _, err := MeanIoU([]int32{0}, []int32{0, 1}, 2); err == nil {
		t.Error("accepted length mismatch")
	}
	if _, err := MeanIoU([]int32{5}, []int32{0}, 2); err == nil {
		t.Error("accepted out-of-range label")
	}
}

func TestSummarizeLatency(t *testing.T) {
	s := SummarizeLatency([]time.Duration{10 * time.Millisecond, 20 * time.Millisecond})
	if s.Mean != 15*time.Millisecond || s.N != 2 {
		t.Errorf("summary = %+v", s)
	}
	if s.Std != 5*time.Millisecond {
		t.Errorf("std = %v", s.Std)
	}
	if SummarizeLatency(nil).N != 0 {
		t.Error("empty summary")
	}
	if s.String() == "" {
		t.Error("String")
	}
}

func TestAgreement(t *testing.T) {
	a, err := Agreement([]int{1, 2}, []int{1, 3})
	if err != nil || a != 0.5 {
		t.Errorf("Agreement = %v, %v", a, err)
	}
}
