// Package graph defines the model intermediate representation shared by the
// whole stack: a tensor table plus a topologically ordered node list, the
// in-memory analogue of a TensorFlow Lite FlatBuffer. Models exist in three
// formats along the deployment path the paper describes (§3.3): "checkpoint"
// (training graph with BatchNorm and explicit activations), "mobile"
// (inference-optimized float graph after folding and fusion) and "quant"
// (full-integer post-training quantized graph).
package graph

import "fmt"

// OpType enumerates the operations the runtime supports.
type OpType int

const (
	OpConv2D OpType = iota
	OpDepthwiseConv2D
	OpDense
	OpAvgPool2D
	OpMaxPool2D
	OpMean // global spatial mean (TFLite MEAN over H,W)
	OpPad
	OpAdd
	OpMul
	OpConcat
	OpReLU
	OpReLU6
	OpHardSwish
	OpHardSigmoid
	OpSigmoid
	OpSoftmax
	OpBatchNorm
	OpReshape
	OpQuantize
	OpDequantize
	OpEmbedding
	OpLayerNorm
	OpSelfAttention
	OpResizeBilinear

	numOpTypes
)

var opNames = [...]string{
	OpConv2D:          "Conv2D",
	OpDepthwiseConv2D: "DepthwiseConv2D",
	OpDense:           "Dense",
	OpAvgPool2D:       "AvgPool2D",
	OpMaxPool2D:       "MaxPool2D",
	OpMean:            "Mean",
	OpPad:             "Pad",
	OpAdd:             "Add",
	OpMul:             "Mul",
	OpConcat:          "Concat",
	OpReLU:            "ReLU",
	OpReLU6:           "ReLU6",
	OpHardSwish:       "HardSwish",
	OpHardSigmoid:     "HardSigmoid",
	OpSigmoid:         "Sigmoid",
	OpSoftmax:         "Softmax",
	OpBatchNorm:       "BatchNorm",
	OpReshape:         "Reshape",
	OpQuantize:        "Quantize",
	OpDequantize:      "Dequantize",
	OpEmbedding:       "Embedding",
	OpLayerNorm:       "LayerNorm",
	OpSelfAttention:   "SelfAttention",
	OpResizeBilinear:  "ResizeBilinear",
}

func (op OpType) String() string {
	if op >= 0 && int(op) < len(opNames) {
		return opNames[op]
	}
	return fmt.Sprintf("Op(%d)", int(op))
}

// LayerClass groups op types into the coarse layer classes the paper's
// Table 4 aggregates latency by ("D-Conv", "Conv", "FC", "Mean", "Pad",
// "Add", "Softmax", "Quantize").
func (op OpType) LayerClass() string {
	switch op {
	case OpDepthwiseConv2D:
		return "D-Conv"
	case OpConv2D:
		return "Conv"
	case OpDense:
		return "FC"
	case OpMean, OpAvgPool2D, OpMaxPool2D:
		return "Mean"
	case OpPad:
		return "Pad"
	case OpAdd, OpMul, OpConcat:
		return "Add"
	case OpSoftmax, OpSigmoid, OpHardSigmoid, OpHardSwish, OpReLU, OpReLU6:
		return "Softmax"
	case OpQuantize, OpDequantize:
		return "Quantize"
	default:
		return "Other"
	}
}

// Activation is an activation function fused into a compute op's attributes
// (the converter's activation-fusion pass produces these, mirroring TFLite).
type Activation int

const (
	ActNone Activation = iota
	ActReLU
	ActReLU6
)

func (a Activation) String() string {
	switch a {
	case ActReLU:
		return "relu"
	case ActReLU6:
		return "relu6"
	default:
		return "none"
	}
}

// Attrs carries per-node parameters. Unused fields are zero.
type Attrs struct {
	// Convolutions and pools.
	StrideH, StrideW       int
	PadT, PadB, PadL, PadR int
	DilationH, DilationW   int
	KernelH, KernelW       int // pooling window
	Activation             Activation
	DepthMultiplier        int

	// Concat/Softmax axis.
	Axis int

	// Pad op: per-dimension (before, after) amounts.
	Paddings [][2]int

	// BatchNorm / LayerNorm epsilon.
	Eps float64

	// SelfAttention.
	NumHeads int

	// ResizeBilinear target.
	TargetH, TargetW int

	// Reshape target (one dim may be -1).
	NewShape []int
}
