package graph

import (
	"fmt"

	"mlexray/internal/quant"
	"mlexray/internal/tensor"
)

// Format names the stage of the deployment path a model is in (§3.3).
type Format string

const (
	FormatCheckpoint Format = "checkpoint" // training graph (BatchNorm, unfused activations)
	FormatMobile     Format = "mobile"     // converted float inference graph
	FormatQuant      Format = "quant"      // full-integer quantized graph
)

// TensorInfo describes one entry of the model's tensor table.
type TensorInfo struct {
	Name  string
	Shape []int
	DType tensor.DType
	// Quant holds quantization parameters for U8/I8/I32 tensors in quantized
	// models; nil for float tensors.
	Quant *quant.Params
	// Const marks weights/constants, whose values live in Model.Consts.
	Const bool
}

// Node is one operation. Inputs and Outputs index the tensor table.
type Node struct {
	Op      OpType
	Name    string
	Inputs  []int
	Outputs []int
	Attrs   Attrs
}

// Meta records the input conventions of the training pipeline — exactly the
// information the paper says is "lost in the handoff" from model developers
// to app developers (§1). The reference pipelines (§3.3) are generated from
// this; the edge pipeline may deviate from it, which is how deployment bugs
// are injected and then caught.
type Meta struct {
	Task         string // "classification", "detection", "segmentation", "speech", "text"
	InputH       int
	InputW       int
	InputC       int
	ChannelOrder string  // "RGB" or "BGR"
	NormLo       float64 // expected input range
	NormHi       float64
	Resize       string // "area", "bilinear", "nearest"
	NumClasses   int
	// SpecNorm names the spectrogram normalization for speech models.
	SpecNorm string
	// SeqLen / VocabSize for text models.
	SeqLen    int
	VocabSize int
	// Anchors rows of [cy, cx, h, w] in [0,1] for detection models.
	Anchors [][4]float64
}

// Model is the IR. Nodes are topologically ordered: a node may only read
// tensors produced by earlier nodes, constants, or model inputs.
type Model struct {
	Name    string
	Format  Format
	Tensors []TensorInfo
	Consts  map[int]*tensor.Tensor
	Nodes   []Node
	Inputs  []int
	Outputs []int
	Meta    Meta
}

// TensorByName returns the tensor id with the given name.
func (m *Model) TensorByName(name string) (int, error) {
	for i, t := range m.Tensors {
		if t.Name == name {
			return i, nil
		}
	}
	return -1, fmt.Errorf("graph: model %q has no tensor %q", m.Name, name)
}

// NodeByName returns the index of the named node.
func (m *Model) NodeByName(name string) (int, error) {
	for i, n := range m.Nodes {
		if n.Name == name {
			return i, nil
		}
	}
	return -1, fmt.Errorf("graph: model %q has no node %q", m.Name, name)
}

// NumParams counts weight elements.
func (m *Model) NumParams() int {
	n := 0
	for _, t := range m.Consts {
		n += t.Len()
	}
	return n
}

// WeightBytes returns the storage footprint of all constants.
func (m *Model) WeightBytes() int {
	n := 0
	for _, t := range m.Consts {
		n += t.Bytes()
	}
	return n
}

// ActivationBytes returns the total size of all non-constant tensors, the
// upper bound the interpreter's arena uses for memory accounting.
func (m *Model) ActivationBytes() int {
	n := 0
	for i, t := range m.Tensors {
		if _, isConst := m.Consts[i]; !isConst {
			n += tensor.NumElems(t.Shape) * t.DType.Size()
		}
	}
	return n
}

// Validate checks structural invariants: tensor references in range,
// topological order, constants present, input/output declarations sane.
func (m *Model) Validate() error {
	if m.Name == "" {
		return fmt.Errorf("graph: model has no name")
	}
	produced := make([]bool, len(m.Tensors))
	for _, id := range m.Inputs {
		if id < 0 || id >= len(m.Tensors) {
			return fmt.Errorf("graph: input tensor %d out of range", id)
		}
		produced[id] = true
	}
	for id := range m.Consts {
		if id < 0 || id >= len(m.Tensors) {
			return fmt.Errorf("graph: const tensor %d out of range", id)
		}
		if !m.Tensors[id].Const {
			return fmt.Errorf("graph: tensor %d has const data but is not marked Const", id)
		}
		produced[id] = true
	}
	for i, t := range m.Tensors {
		if t.Const {
			c, ok := m.Consts[i]
			if !ok {
				return fmt.Errorf("graph: const tensor %d (%s) has no data", i, t.Name)
			}
			if c.DType != t.DType {
				return fmt.Errorf("graph: const tensor %d dtype %v vs info %v", i, c.DType, t.DType)
			}
			if !tensor.SameShape(c.Shape, t.Shape) {
				return fmt.Errorf("graph: const tensor %d shape %v vs info %v", i, c.Shape, t.Shape)
			}
		}
	}
	for ni, n := range m.Nodes {
		for _, id := range n.Inputs {
			if id < 0 || id >= len(m.Tensors) {
				return fmt.Errorf("graph: node %d (%s) input %d out of range", ni, n.Name, id)
			}
			if !produced[id] {
				return fmt.Errorf("graph: node %d (%s) reads tensor %d before it is produced", ni, n.Name, id)
			}
		}
		for _, id := range n.Outputs {
			if id < 0 || id >= len(m.Tensors) {
				return fmt.Errorf("graph: node %d (%s) output %d out of range", ni, n.Name, id)
			}
			if m.Tensors[id].Const {
				return fmt.Errorf("graph: node %d (%s) writes const tensor %d", ni, n.Name, id)
			}
			if produced[id] {
				return fmt.Errorf("graph: tensor %d written twice (node %d, %s)", id, ni, n.Name)
			}
			produced[id] = true
		}
	}
	for _, id := range m.Outputs {
		if id < 0 || id >= len(m.Tensors) {
			return fmt.Errorf("graph: output tensor %d out of range", id)
		}
		if !produced[id] {
			return fmt.Errorf("graph: output tensor %d never produced", id)
		}
	}
	if len(m.Inputs) == 0 || len(m.Outputs) == 0 {
		return fmt.Errorf("graph: model must declare inputs and outputs")
	}
	return nil
}

// Clone returns a deep copy of the model (tensors, nodes, constants). Used
// by the converter so optimization passes never mutate the source graph.
func (m *Model) Clone() *Model {
	c := &Model{
		Name:    m.Name,
		Format:  m.Format,
		Tensors: make([]TensorInfo, len(m.Tensors)),
		Consts:  make(map[int]*tensor.Tensor, len(m.Consts)),
		Nodes:   make([]Node, len(m.Nodes)),
		Inputs:  append([]int(nil), m.Inputs...),
		Outputs: append([]int(nil), m.Outputs...),
		Meta:    m.Meta,
	}
	c.Meta.Anchors = append([][4]float64(nil), m.Meta.Anchors...)
	for i, t := range m.Tensors {
		ct := t
		ct.Shape = append([]int(nil), t.Shape...)
		if t.Quant != nil {
			q := *t.Quant
			q.Scales = append([]float64(nil), t.Quant.Scales...)
			q.ZeroPoints = append([]int32(nil), t.Quant.ZeroPoints...)
			ct.Quant = &q
		}
		c.Tensors[i] = ct
	}
	for id, t := range m.Consts {
		c.Consts[id] = t.Clone()
	}
	for i, n := range m.Nodes {
		cn := n
		cn.Inputs = append([]int(nil), n.Inputs...)
		cn.Outputs = append([]int(nil), n.Outputs...)
		cn.Attrs.Paddings = append([][2]int(nil), n.Attrs.Paddings...)
		cn.Attrs.NewShape = append([]int(nil), n.Attrs.NewShape...)
		c.Nodes[i] = cn
	}
	return c
}
