package graph

import "fmt"

// ConvOutDim computes one spatial output dimension of a convolution or pool:
// floor((in + padBefore + padAfter - effectiveKernel) / stride) + 1.
func ConvOutDim(in, kernel, stride, dilation, padBefore, padAfter int) int {
	eff := (kernel-1)*dilation + 1
	return (in+padBefore+padAfter-eff)/stride + 1
}

// SamePadding returns the (before, after) padding that keeps
// ceil(in/stride) output elements, TFLite's SAME convention.
func SamePadding(in, kernel, stride, dilation int) (before, after int) {
	eff := (kernel-1)*dilation + 1
	out := (in + stride - 1) / stride
	total := (out-1)*stride + eff - in
	if total < 0 {
		total = 0
	}
	return total / 2, total - total/2
}

// InferShape computes a node's output shape from its input shapes. inShapes
// must follow the op's input convention (activations first, then weights).
// It is used by the builder at graph-construction time and doubles as a
// consistency check in the interpreter.
func InferShape(op OpType, attrs Attrs, inShapes [][]int) ([]int, error) {
	need := func(n int) error {
		if len(inShapes) < n {
			return fmt.Errorf("graph: %v needs %d inputs, got %d", op, n, len(inShapes))
		}
		return nil
	}
	switch op {
	case OpConv2D:
		if err := need(2); err != nil {
			return nil, err
		}
		in, w := inShapes[0], inShapes[1] // [N,H,W,C], [outC,kh,kw,inC]
		if len(in) != 4 || len(w) != 4 {
			return nil, fmt.Errorf("graph: Conv2D shapes %v, %v", in, w)
		}
		if in[3] != w[3] {
			return nil, fmt.Errorf("graph: Conv2D channel mismatch in=%d weight=%d", in[3], w[3])
		}
		oh := ConvOutDim(in[1], w[1], attrs.StrideH, max1(attrs.DilationH), attrs.PadT, attrs.PadB)
		ow := ConvOutDim(in[2], w[2], attrs.StrideW, max1(attrs.DilationW), attrs.PadL, attrs.PadR)
		if oh <= 0 || ow <= 0 {
			return nil, fmt.Errorf("graph: Conv2D output %dx%d", oh, ow)
		}
		return []int{in[0], oh, ow, w[0]}, nil

	case OpDepthwiseConv2D:
		if err := need(2); err != nil {
			return nil, err
		}
		in, w := inShapes[0], inShapes[1] // [N,H,W,C], [1,kh,kw,C*mult]
		if len(in) != 4 || len(w) != 4 {
			return nil, fmt.Errorf("graph: DepthwiseConv2D shapes %v, %v", in, w)
		}
		mult := max1(attrs.DepthMultiplier)
		if w[3] != in[3]*mult {
			return nil, fmt.Errorf("graph: DepthwiseConv2D weight channels %d != in %d * mult %d", w[3], in[3], mult)
		}
		oh := ConvOutDim(in[1], w[1], attrs.StrideH, max1(attrs.DilationH), attrs.PadT, attrs.PadB)
		ow := ConvOutDim(in[2], w[2], attrs.StrideW, max1(attrs.DilationW), attrs.PadL, attrs.PadR)
		if oh <= 0 || ow <= 0 {
			return nil, fmt.Errorf("graph: DepthwiseConv2D output %dx%d", oh, ow)
		}
		return []int{in[0], oh, ow, w[3]}, nil

	case OpDense:
		if err := need(2); err != nil {
			return nil, err
		}
		in, w := inShapes[0], inShapes[1] // [N,inC] (or [N,...] flattened), [outC,inC]
		if len(w) != 2 {
			return nil, fmt.Errorf("graph: Dense weight shape %v", w)
		}
		flat := 1
		for _, d := range in[1:] {
			flat *= d
		}
		if flat != w[1] {
			return nil, fmt.Errorf("graph: Dense input %v flattens to %d, weight wants %d", in, flat, w[1])
		}
		return []int{in[0], w[0]}, nil

	case OpAvgPool2D, OpMaxPool2D:
		if err := need(1); err != nil {
			return nil, err
		}
		in := inShapes[0]
		if len(in) != 4 {
			return nil, fmt.Errorf("graph: pool input %v", in)
		}
		oh := ConvOutDim(in[1], attrs.KernelH, attrs.StrideH, 1, attrs.PadT, attrs.PadB)
		ow := ConvOutDim(in[2], attrs.KernelW, attrs.StrideW, 1, attrs.PadL, attrs.PadR)
		if oh <= 0 || ow <= 0 {
			return nil, fmt.Errorf("graph: pool output %dx%d", oh, ow)
		}
		return []int{in[0], oh, ow, in[3]}, nil

	case OpMean:
		if err := need(1); err != nil {
			return nil, err
		}
		in := inShapes[0]
		if len(in) != 4 {
			return nil, fmt.Errorf("graph: Mean input %v", in)
		}
		return []int{in[0], in[3]}, nil

	case OpPad:
		if err := need(1); err != nil {
			return nil, err
		}
		in := inShapes[0]
		if len(attrs.Paddings) != len(in) {
			return nil, fmt.Errorf("graph: Pad has %d padding pairs for rank %d", len(attrs.Paddings), len(in))
		}
		out := make([]int, len(in))
		for i, d := range in {
			out[i] = d + attrs.Paddings[i][0] + attrs.Paddings[i][1]
		}
		return out, nil

	case OpAdd, OpMul:
		if err := need(2); err != nil {
			return nil, err
		}
		a, b := inShapes[0], inShapes[1]
		if sameIntSlice(a, b) {
			return append([]int(nil), a...), nil
		}
		// Channel broadcast: [N,H,W,C] op [N,C] (or [N,1,1,C]), the SE-block
		// gating pattern.
		if len(a) == 4 && (len(b) == 2 || len(b) == 4) {
			bc := b[len(b)-1]
			ok := bc == a[3]
			for _, d := range b[1 : len(b)-1] {
				if d != 1 {
					ok = false
				}
			}
			if ok && a[0] == b[0] {
				return append([]int(nil), a...), nil
			}
		}
		return nil, fmt.Errorf("graph: %v cannot broadcast %v with %v", op, a, b)

	case OpConcat:
		if err := need(2); err != nil {
			return nil, err
		}
		axis := attrs.Axis
		base := inShapes[0]
		if axis < 0 || axis >= len(base) {
			return nil, fmt.Errorf("graph: Concat axis %d for rank %d", axis, len(base))
		}
		out := append([]int(nil), base...)
		for _, s := range inShapes[1:] {
			if len(s) != len(base) {
				return nil, fmt.Errorf("graph: Concat rank mismatch %v vs %v", base, s)
			}
			for i := range s {
				if i != axis && s[i] != base[i] {
					return nil, fmt.Errorf("graph: Concat dim mismatch %v vs %v", base, s)
				}
			}
			out[axis] += s[axis]
		}
		return out, nil

	case OpReLU, OpReLU6, OpHardSwish, OpHardSigmoid, OpSigmoid, OpSoftmax,
		OpBatchNorm, OpLayerNorm, OpQuantize, OpDequantize:
		if err := need(1); err != nil {
			return nil, err
		}
		return append([]int(nil), inShapes[0]...), nil

	case OpReshape:
		if err := need(1); err != nil {
			return nil, err
		}
		in := inShapes[0]
		n := 1
		for _, d := range in {
			n *= d
		}
		out := append([]int(nil), attrs.NewShape...)
		infer, known := -1, 1
		for i, d := range out {
			if d == -1 {
				infer = i
			} else {
				known *= d
			}
		}
		if infer >= 0 {
			if known == 0 || n%known != 0 {
				return nil, fmt.Errorf("graph: Reshape %v to %v", in, attrs.NewShape)
			}
			out[infer] = n / known
		} else if known != n {
			return nil, fmt.Errorf("graph: Reshape %v to %v changes count", in, attrs.NewShape)
		}
		return out, nil

	case OpEmbedding:
		if err := need(2); err != nil {
			return nil, err
		}
		ids, table := inShapes[0], inShapes[1] // [N,T], [vocab,dim]
		if len(ids) != 2 || len(table) != 2 {
			return nil, fmt.Errorf("graph: Embedding shapes %v, %v", ids, table)
		}
		return []int{ids[0], ids[1], table[1]}, nil

	case OpSelfAttention:
		if err := need(1); err != nil {
			return nil, err
		}
		in := inShapes[0] // [N,T,D]
		if len(in) != 3 {
			return nil, fmt.Errorf("graph: SelfAttention input %v", in)
		}
		if attrs.NumHeads <= 0 || in[2]%attrs.NumHeads != 0 {
			return nil, fmt.Errorf("graph: SelfAttention heads %d for dim %d", attrs.NumHeads, in[2])
		}
		return append([]int(nil), in...), nil

	case OpResizeBilinear:
		if err := need(1); err != nil {
			return nil, err
		}
		in := inShapes[0]
		if len(in) != 4 {
			return nil, fmt.Errorf("graph: ResizeBilinear input %v", in)
		}
		if attrs.TargetH <= 0 || attrs.TargetW <= 0 {
			return nil, fmt.Errorf("graph: ResizeBilinear target %dx%d", attrs.TargetH, attrs.TargetW)
		}
		return []int{in[0], attrs.TargetH, attrs.TargetW, in[3]}, nil
	}
	return nil, fmt.Errorf("graph: no shape rule for %v", op)
}

func max1(v int) int {
	if v < 1 {
		return 1
	}
	return v
}

func sameIntSlice(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
