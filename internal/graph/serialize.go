package graph

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"os"
)

// The serialized model format plays the role of TFLite's FlatBuffer file:
// the single artifact handed from the training side to the deployment side.
// gob with a magic header keeps it compact, binary and stdlib-only.

const modelMagic = "MLXM0001"

// Save writes the model to w.
func Save(m *Model, w io.Writer) error {
	if err := m.Validate(); err != nil {
		return fmt.Errorf("graph: refusing to save invalid model: %w", err)
	}
	if _, err := io.WriteString(w, modelMagic); err != nil {
		return fmt.Errorf("graph: write magic: %w", err)
	}
	if err := gob.NewEncoder(w).Encode(m); err != nil {
		return fmt.Errorf("graph: encode model: %w", err)
	}
	return nil
}

// Load reads a model written by Save.
func Load(r io.Reader) (*Model, error) {
	magic := make([]byte, len(modelMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("graph: read magic: %w", err)
	}
	if string(magic) != modelMagic {
		return nil, fmt.Errorf("graph: bad magic %q (not a model file)", magic)
	}
	var m Model
	if err := gob.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("graph: decode model: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("graph: loaded model invalid: %w", err)
	}
	return &m, nil
}

// SaveFile writes the model to a file path.
func SaveFile(m *Model, path string) error {
	var buf bytes.Buffer
	if err := Save(m, &buf); err != nil {
		return err
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("graph: write %s: %w", path, err)
	}
	return nil
}

// LoadFile reads a model from a file path.
func LoadFile(path string) (*Model, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("graph: read %s: %w", path, err)
	}
	return Load(bytes.NewReader(data))
}

// EncodedSize returns the serialized byte size, the "model footprint on
// disk" metric of the overhead tables.
func EncodedSize(m *Model) (int, error) {
	var buf bytes.Buffer
	if err := Save(m, &buf); err != nil {
		return 0, err
	}
	return buf.Len(), nil
}
