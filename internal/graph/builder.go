package graph

import (
	"fmt"

	"mlexray/internal/quant"
	"mlexray/internal/tensor"
)

// Builder constructs models incrementally with automatic shape inference.
// Methods panic on structural errors: graph construction is programmer
// input, not runtime data, so failing fast at build time is the correct
// behaviour (the zoo's unit tests exercise every architecture).
type Builder struct {
	m *Model
}

// NewBuilder starts a model in checkpoint format.
func NewBuilder(name string) *Builder {
	return &Builder{m: &Model{
		Name:   name,
		Format: FormatCheckpoint,
		Consts: make(map[int]*tensor.Tensor),
	}}
}

// Meta sets the model's deployment metadata.
func (b *Builder) Meta(meta Meta) *Builder {
	b.m.Meta = meta
	return b
}

// Input declares a model input tensor and returns its id.
func (b *Builder) Input(name string, dt tensor.DType, shape ...int) int {
	id := b.addTensor(name, dt, shape, false, nil)
	b.m.Inputs = append(b.m.Inputs, id)
	return id
}

// Const registers a constant (weight) tensor and returns its id.
func (b *Builder) Const(name string, t *tensor.Tensor) int {
	id := b.addTensor(name, t.DType, t.Shape, true, nil)
	b.m.Consts[id] = t
	return id
}

// Output marks a tensor as a model output.
func (b *Builder) Output(id int) {
	b.m.Outputs = append(b.m.Outputs, id)
}

// Node appends an operation, infers its output shape, allocates the output
// tensor entry and returns its id. The output dtype follows the first
// input's dtype unless the op dictates otherwise (Quantize/Dequantize).
func (b *Builder) Node(op OpType, name string, attrs Attrs, inputs ...int) int {
	inShapes := make([][]int, len(inputs))
	for i, id := range inputs {
		b.checkID(id)
		inShapes[i] = b.m.Tensors[id].Shape
	}
	outShape, err := InferShape(op, attrs, inShapes)
	if err != nil {
		panic(fmt.Sprintf("graph builder %q node %q: %v", b.m.Name, name, err))
	}
	dt := b.m.Tensors[inputs[0]].DType
	switch op {
	case OpQuantize:
		dt = tensor.U8
	case OpDequantize, OpEmbedding, OpSelfAttention:
		dt = tensor.F32
	}
	out := b.addTensor(name+":out", dt, outShape, false, nil)
	b.m.Nodes = append(b.m.Nodes, Node{
		Op:      op,
		Name:    name,
		Inputs:  append([]int(nil), inputs...),
		Outputs: []int{out},
		Attrs:   attrs,
	})
	return out
}

// SetQuant attaches quantization parameters to a tensor (used by the
// converter when producing quantized graphs).
func (b *Builder) SetQuant(id int, p *quant.Params) {
	b.checkID(id)
	b.m.Tensors[id].Quant = p
}

// RenameTensor overrides a tensor's name, letting model builders expose
// well-known tensors ("logits", "boxes") for the trainer and validator.
func (b *Builder) RenameTensor(id int, name string) {
	b.checkID(id)
	b.m.Tensors[id].Name = name
}

// Shape returns a tensor's inferred shape.
func (b *Builder) Shape(id int) []int {
	b.checkID(id)
	return b.m.Tensors[id].Shape
}

// Finish validates and returns the model.
func (b *Builder) Finish() (*Model, error) {
	if err := b.m.Validate(); err != nil {
		return nil, err
	}
	return b.m, nil
}

// MustFinish is Finish for model-zoo code paths where an invalid
// architecture is a programming error.
func (b *Builder) MustFinish() *Model {
	m, err := b.Finish()
	if err != nil {
		panic(err)
	}
	return m
}

func (b *Builder) addTensor(name string, dt tensor.DType, shape []int, isConst bool, q *quant.Params) int {
	id := len(b.m.Tensors)
	b.m.Tensors = append(b.m.Tensors, TensorInfo{
		Name:  name,
		Shape: append([]int(nil), shape...),
		DType: dt,
		Quant: q,
		Const: isConst,
	})
	return id
}

func (b *Builder) checkID(id int) {
	if id < 0 || id >= len(b.m.Tensors) {
		panic(fmt.Sprintf("graph builder %q: tensor id %d out of range", b.m.Name, id))
	}
}
