package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"mlexray/internal/tensor"
)

// tinyModel builds a small but representative conv->relu->mean->dense->softmax
// graph used across the serialization and validation tests.
func tinyModel(t *testing.T) *Model {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	b := NewBuilder("tiny")
	in := b.Input("input", tensor.F32, 1, 8, 8, 3)
	w := tensor.New(tensor.F32, 4, 3, 3, 3)
	tensor.HeInit(rng, w, 27)
	bias := tensor.New(tensor.F32, 4)
	wid := b.Const("conv/w", w)
	bid := b.Const("conv/b", bias)
	pt, pb := SamePadding(8, 3, 1, 1)
	x := b.Node(OpConv2D, "conv", Attrs{StrideH: 1, StrideW: 1, PadT: pt, PadB: pb, PadL: pt, PadR: pb}, in, wid, bid)
	x = b.Node(OpReLU, "relu", Attrs{}, x)
	x = b.Node(OpMean, "gap", Attrs{}, x)
	dw := tensor.New(tensor.F32, 5, 4)
	tensor.HeInit(rng, dw, 4)
	db := tensor.New(tensor.F32, 5)
	x = b.Node(OpDense, "fc", Attrs{}, x, b.Const("fc/w", dw), b.Const("fc/b", db))
	b.RenameTensor(x, "logits")
	x = b.Node(OpSoftmax, "softmax", Attrs{Axis: 1}, x)
	b.Output(x)
	m, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestOpTypeStrings(t *testing.T) {
	if OpConv2D.String() != "Conv2D" || OpSelfAttention.String() != "SelfAttention" {
		t.Error("OpType.String")
	}
	if OpType(999).String() != "Op(999)" {
		t.Error("unknown op string")
	}
}

func TestLayerClassMapping(t *testing.T) {
	cases := map[OpType]string{
		OpDepthwiseConv2D: "D-Conv",
		OpConv2D:          "Conv",
		OpDense:           "FC",
		OpMean:            "Mean",
		OpAvgPool2D:       "Mean",
		OpPad:             "Pad",
		OpAdd:             "Add",
		OpSoftmax:         "Softmax",
		OpQuantize:        "Quantize",
		OpReshape:         "Other",
	}
	for op, want := range cases {
		if got := op.LayerClass(); got != want {
			t.Errorf("%v class = %q, want %q", op, got, want)
		}
	}
}

func TestSamePadding(t *testing.T) {
	// 8 wide, kernel 3, stride 1 -> pad 1/1, output 8.
	bef, aft := SamePadding(8, 3, 1, 1)
	if bef != 1 || aft != 1 {
		t.Errorf("SAME 8/3/1 = %d,%d", bef, aft)
	}
	if out := ConvOutDim(8, 3, 1, 1, bef, aft); out != 8 {
		t.Errorf("out = %d", out)
	}
	// 8 wide, kernel 3, stride 2 -> output ceil(8/2)=4.
	bef, aft = SamePadding(8, 3, 2, 1)
	if out := ConvOutDim(8, 3, 2, 1, bef, aft); out != 4 {
		t.Errorf("stride2 out = %d (pad %d,%d)", out, bef, aft)
	}
	// Dilation 2: effective kernel 5.
	bef, aft = SamePadding(8, 3, 1, 2)
	if out := ConvOutDim(8, 3, 1, 2, bef, aft); out != 8 {
		t.Errorf("dilated out = %d", out)
	}
}

func TestInferShapeConv(t *testing.T) {
	out, err := InferShape(OpConv2D, Attrs{StrideH: 2, StrideW: 2, PadT: 1, PadB: 1, PadL: 1, PadR: 1},
		[][]int{{1, 8, 8, 3}, {16, 3, 3, 3}, {16}})
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.SameShape(out, []int{1, 4, 4, 16}) {
		t.Errorf("conv out = %v", out)
	}
	if _, err := InferShape(OpConv2D, Attrs{StrideH: 1, StrideW: 1},
		[][]int{{1, 8, 8, 4}, {16, 3, 3, 3}}); err == nil {
		t.Error("accepted channel mismatch")
	}
}

func TestInferShapeDepthwise(t *testing.T) {
	out, err := InferShape(OpDepthwiseConv2D, Attrs{StrideH: 1, StrideW: 1, PadT: 1, PadB: 1, PadL: 1, PadR: 1, DepthMultiplier: 1},
		[][]int{{1, 8, 8, 8}, {1, 3, 3, 8}, {8}})
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.SameShape(out, []int{1, 8, 8, 8}) {
		t.Errorf("dw out = %v", out)
	}
	if _, err := InferShape(OpDepthwiseConv2D, Attrs{StrideH: 1, StrideW: 1, DepthMultiplier: 2},
		[][]int{{1, 8, 8, 8}, {1, 3, 3, 8}}); err == nil {
		t.Error("accepted multiplier mismatch")
	}
}

func TestInferShapeDenseFlattens(t *testing.T) {
	out, err := InferShape(OpDense, Attrs{}, [][]int{{2, 4, 4, 3}, {10, 48}, {10}})
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.SameShape(out, []int{2, 10}) {
		t.Errorf("dense out = %v", out)
	}
}

func TestInferShapePoolMeanPad(t *testing.T) {
	out, err := InferShape(OpAvgPool2D, Attrs{KernelH: 2, KernelW: 2, StrideH: 2, StrideW: 2}, [][]int{{1, 8, 8, 4}})
	if err != nil || !tensor.SameShape(out, []int{1, 4, 4, 4}) {
		t.Errorf("pool out = %v, %v", out, err)
	}
	out, err = InferShape(OpMean, Attrs{}, [][]int{{1, 7, 7, 32}})
	if err != nil || !tensor.SameShape(out, []int{1, 32}) {
		t.Errorf("mean out = %v, %v", out, err)
	}
	out, err = InferShape(OpPad, Attrs{Paddings: [][2]int{{0, 0}, {1, 1}, {1, 1}, {0, 0}}}, [][]int{{1, 8, 8, 4}})
	if err != nil || !tensor.SameShape(out, []int{1, 10, 10, 4}) {
		t.Errorf("pad out = %v, %v", out, err)
	}
}

func TestInferShapeAddBroadcast(t *testing.T) {
	out, err := InferShape(OpAdd, Attrs{}, [][]int{{1, 8, 8, 4}, {1, 8, 8, 4}})
	if err != nil || !tensor.SameShape(out, []int{1, 8, 8, 4}) {
		t.Errorf("add out = %v, %v", out, err)
	}
	// SE gate: [N,H,W,C] * [N,C].
	out, err = InferShape(OpMul, Attrs{}, [][]int{{1, 8, 8, 4}, {1, 4}})
	if err != nil || !tensor.SameShape(out, []int{1, 8, 8, 4}) {
		t.Errorf("mul broadcast out = %v, %v", out, err)
	}
	if _, err := InferShape(OpAdd, Attrs{}, [][]int{{1, 8, 8, 4}, {1, 3}}); err == nil {
		t.Error("accepted bad broadcast")
	}
}

func TestInferShapeConcat(t *testing.T) {
	out, err := InferShape(OpConcat, Attrs{Axis: 3}, [][]int{{1, 4, 4, 8}, {1, 4, 4, 16}})
	if err != nil || !tensor.SameShape(out, []int{1, 4, 4, 24}) {
		t.Errorf("concat out = %v, %v", out, err)
	}
	if _, err := InferShape(OpConcat, Attrs{Axis: 3}, [][]int{{1, 4, 4, 8}, {1, 5, 4, 8}}); err == nil {
		t.Error("accepted dim mismatch off-axis")
	}
}

func TestInferShapeReshape(t *testing.T) {
	out, err := InferShape(OpReshape, Attrs{NewShape: []int{1, -1, 4}}, [][]int{{1, 6, 4}})
	if err != nil || !tensor.SameShape(out, []int{1, 6, 4}) {
		t.Errorf("reshape out = %v, %v", out, err)
	}
	if _, err := InferShape(OpReshape, Attrs{NewShape: []int{5}}, [][]int{{1, 6}}); err == nil {
		t.Error("accepted bad reshape")
	}
}

func TestInferShapeEmbeddingAttention(t *testing.T) {
	out, err := InferShape(OpEmbedding, Attrs{}, [][]int{{2, 16}, {100, 32}})
	if err != nil || !tensor.SameShape(out, []int{2, 16, 32}) {
		t.Errorf("embedding out = %v, %v", out, err)
	}
	out, err = InferShape(OpSelfAttention, Attrs{NumHeads: 4}, [][]int{{2, 16, 32}})
	if err != nil || !tensor.SameShape(out, []int{2, 16, 32}) {
		t.Errorf("attention out = %v, %v", out, err)
	}
	if _, err := InferShape(OpSelfAttention, Attrs{NumHeads: 5}, [][]int{{2, 16, 32}}); err == nil {
		t.Error("accepted indivisible heads")
	}
}

func TestInferShapeResize(t *testing.T) {
	out, err := InferShape(OpResizeBilinear, Attrs{TargetH: 16, TargetW: 16}, [][]int{{1, 8, 8, 3}})
	if err != nil || !tensor.SameShape(out, []int{1, 16, 16, 3}) {
		t.Errorf("resize out = %v, %v", out, err)
	}
}

func TestBuilderBuildsValidModel(t *testing.T) {
	m := tinyModel(t)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(m.Nodes) != 5 {
		t.Errorf("node count = %d", len(m.Nodes))
	}
	if id, err := m.TensorByName("logits"); err != nil || id < 0 {
		t.Errorf("logits tensor: %v", err)
	}
	if _, err := m.TensorByName("nope"); err == nil {
		t.Error("TensorByName accepted missing name")
	}
	if _, err := m.NodeByName("conv"); err != nil {
		t.Error("NodeByName failed for conv")
	}
	if m.NumParams() != 4*3*3*3+4+5*4+5 {
		t.Errorf("NumParams = %d", m.NumParams())
	}
}

func TestValidateCatchesTopologicalViolation(t *testing.T) {
	m := tinyModel(t)
	// Make node 0 read a tensor produced by node 2.
	m.Nodes[0].Inputs[0] = m.Nodes[2].Outputs[0]
	if err := m.Validate(); err == nil || !strings.Contains(err.Error(), "before it is produced") {
		t.Errorf("Validate = %v", err)
	}
}

func TestValidateCatchesMissingConst(t *testing.T) {
	m := tinyModel(t)
	for id := range m.Consts {
		delete(m.Consts, id)
		break
	}
	if err := m.Validate(); err == nil {
		t.Error("Validate accepted missing const data")
	}
}

func TestValidateCatchesDoubleWrite(t *testing.T) {
	m := tinyModel(t)
	m.Nodes[1].Outputs[0] = m.Nodes[0].Outputs[0]
	if err := m.Validate(); err == nil {
		t.Error("Validate accepted double write")
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := tinyModel(t)
	c := m.Clone()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// Mutate the clone's weights and nodes; original must be untouched.
	for id := range c.Consts {
		c.Consts[id].Fill(9)
		if m.Consts[id].F[0] == 9 {
			t.Fatal("Clone shares const storage")
		}
		break
	}
	c.Nodes[0].Attrs.StrideH = 99
	if m.Nodes[0].Attrs.StrideH == 99 {
		t.Fatal("Clone shares node attrs")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	m := tinyModel(t)
	var buf bytes.Buffer
	if err := Save(m, &buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != m.Name || len(back.Nodes) != len(m.Nodes) || len(back.Tensors) != len(m.Tensors) {
		t.Error("round trip lost structure")
	}
	for id, c := range m.Consts {
		bc, ok := back.Consts[id]
		if !ok {
			t.Fatalf("const %d missing after round trip", id)
		}
		for i := range c.F {
			if c.F[i] != bc.F[i] {
				t.Fatal("const data changed")
			}
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a model at all"))); err == nil {
		t.Error("Load accepted garbage")
	}
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Error("Load accepted empty input")
	}
}

func TestSaveLoadFile(t *testing.T) {
	m := tinyModel(t)
	path := t.TempDir() + "/m.mlxm"
	if err := SaveFile(m, path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "tiny" {
		t.Error("file round trip")
	}
	n, err := EncodedSize(m)
	if err != nil || n <= 0 {
		t.Errorf("EncodedSize = %d, %v", n, err)
	}
}

func TestMemoryAccounting(t *testing.T) {
	m := tinyModel(t)
	if m.WeightBytes() != m.NumParams()*4 {
		t.Errorf("WeightBytes = %d", m.WeightBytes())
	}
	if m.ActivationBytes() <= 0 {
		t.Error("ActivationBytes should be positive")
	}
}

func TestBuilderPanicsOnBadGraph(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected builder panic on shape error")
		}
	}()
	b := NewBuilder("bad")
	in := b.Input("in", tensor.F32, 1, 4, 4, 3)
	w := b.Const("w", tensor.New(tensor.F32, 8, 3, 3, 5)) // wrong inC
	b.Node(OpConv2D, "conv", Attrs{StrideH: 1, StrideW: 1}, in, w)
}
