package graph

import "fmt"

// Rebatch returns a clone of the model with every non-constant tensor's
// leading (batch) dimension set to n. Deployment models are built with
// batch 1; the trainer rebatches a clone for mini-batch SGD and copies the
// trained constants back. Constants keep their shapes, and tensor ids are
// preserved, so weights transfer by id.
func Rebatch(src *Model, n int) (*Model, error) {
	if n < 1 {
		return nil, fmt.Errorf("graph: rebatch to %d", n)
	}
	m := src.Clone()
	for id := range m.Tensors {
		ti := &m.Tensors[id]
		if ti.Const {
			continue
		}
		if len(ti.Shape) == 0 {
			return nil, fmt.Errorf("graph: tensor %d (%s) is scalar; cannot rebatch", id, ti.Name)
		}
		if ti.Shape[0] != src.Tensors[id].Shape[0] {
			return nil, fmt.Errorf("graph: tensor %d batch mismatch", id)
		}
		ti.Shape[0] = n * ti.Shape[0]
	}
	// Reshape nodes encode the batch dimension in their attributes.
	for ni := range m.Nodes {
		node := &m.Nodes[ni]
		if node.Op == OpReshape && len(node.Attrs.NewShape) > 0 && node.Attrs.NewShape[0] >= 1 {
			node.Attrs.NewShape[0] *= n
		}
	}
	// Verify shape inference still holds node by node.
	for ni := range m.Nodes {
		node := &m.Nodes[ni]
		inShapes := make([][]int, len(node.Inputs))
		for i, id := range node.Inputs {
			inShapes[i] = m.Tensors[id].Shape
		}
		want, err := InferShape(node.Op, node.Attrs, inShapes)
		if err != nil {
			return nil, fmt.Errorf("graph: rebatch node %q: %w", node.Name, err)
		}
		got := m.Tensors[node.Outputs[0]].Shape
		if !sameIntSlice(want, got) {
			return nil, fmt.Errorf("graph: rebatch node %q: inferred %v vs stored %v", node.Name, want, got)
		}
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("graph: rebatched model invalid: %w", err)
	}
	return m, nil
}
