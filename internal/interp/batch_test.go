package interp

import (
	"math/rand"
	"testing"

	"mlexray/internal/ops"
	"mlexray/internal/tensor"
)

// TestBatchMatchesSequentialBitwise is the batched-execution contract: every
// element of a batch-B invoke is bitwise identical to running that input
// through a batch-1 interpreter.
func TestBatchMatchesSequentialBitwise(t *testing.T) {
	for _, resolver := range []*ops.Resolver{ops.NewReference(ops.Fixed()), ops.NewOptimized(ops.Fixed())} {
		m := buildCNN(t, 11)
		seq, err := New(m, resolver)
		if err != nil {
			t.Fatal(err)
		}
		const B = 4
		bp, err := NewBatch(m, B, resolver)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(12))
		ins := make([]*tensor.Tensor, B)
		for e := range ins {
			ins[e] = tensor.New(tensor.F32, 1, 8, 8, 3)
			tensor.RandUniform(rng, ins[e], -1, 1)
		}
		if err := bp.SetInputBatch(0, ins); err != nil {
			t.Fatal(err)
		}
		if err := bp.Invoke(); err != nil {
			t.Fatal(err)
		}
		for e := 0; e < B; e++ {
			want, err := seq.Run(ins[e])
			if err != nil {
				t.Fatal(err)
			}
			got, err := bp.OutputAt(0, e)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want.F {
				if want.F[i] != got.F[i] {
					t.Fatalf("%s: element %d output[%d]: batched %v != sequential %v",
						resolver.Name(), e, i, got.F[i], want.F[i])
				}
			}
		}
	}
}

// TestBatchEmitFrameEventsMatchSequential compares the hook event stream of
// EmitFrame against a sequential run: same node order, same per-element
// output data, same modeled latency (batch-1 costs), same quant params.
func TestBatchEmitFrameEventsMatchSequential(t *testing.T) {
	m := buildCNN(t, 13)
	lat := fakeLatency{}

	var seqEvents []NodeEvent
	var seqOutputs [][]float32
	seq, err := New(m, ops.NewOptimized(ops.Fixed()), WithLatencyModel(lat), WithHook(func(ev NodeEvent) {
		seqEvents = append(seqEvents, ev)
		seqOutputs = append(seqOutputs, append([]float32(nil), ev.Outputs[0].F...))
	}))
	if err != nil {
		t.Fatal(err)
	}

	const B = 3
	var batchEvents []NodeEvent
	var batchOutputs [][]float32
	bp, err := NewBatch(m, B, ops.NewOptimized(ops.Fixed()), WithLatencyModel(lat), WithHook(func(ev NodeEvent) {
		batchEvents = append(batchEvents, ev)
		batchOutputs = append(batchOutputs, append([]float32(nil), ev.Outputs[0].F...))
	}))
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(14))
	ins := make([]*tensor.Tensor, B)
	for e := range ins {
		ins[e] = tensor.New(tensor.F32, 1, 8, 8, 3)
		tensor.RandUniform(rng, ins[e], -1, 1)
	}
	for e, in := range ins {
		if _, err := seq.Run(in); err != nil {
			t.Fatal(err)
		}
		_ = e
	}
	if err := bp.SetInputBatch(0, ins); err != nil {
		t.Fatal(err)
	}
	if err := bp.Invoke(); err != nil {
		t.Fatal(err)
	}
	for e := 0; e < B; e++ {
		bp.EmitFrame(e)
	}

	if len(batchEvents) != len(seqEvents) {
		t.Fatalf("batched emitted %d events, sequential %d", len(batchEvents), len(seqEvents))
	}
	for i := range seqEvents {
		se, be := seqEvents[i], batchEvents[i]
		if se.Index != be.Index || se.Node.Name != be.Node.Name || se.Kind != be.Kind {
			t.Fatalf("event %d: node mismatch (%s vs %s)", i, se.Node.Name, be.Node.Name)
		}
		if se.Cost != be.Cost {
			t.Errorf("event %d (%s): cost %+v vs %+v — batched events must carry batch-1 costs",
				i, se.Node.Name, be.Cost, se.Cost)
		}
		if se.Modeled != be.Modeled {
			t.Errorf("event %d (%s): modeled %v vs %v", i, se.Node.Name, be.Modeled, se.Modeled)
		}
		if !tensor.SameShape(se.Outputs[0].Shape, be.Outputs[0].Shape) {
			t.Fatalf("event %d: output shape %v vs %v", i, be.Outputs[0].Shape, se.Outputs[0].Shape)
		}
		for j := range seqOutputs[i] {
			if seqOutputs[i][j] != batchOutputs[i][j] {
				t.Fatalf("event %d (%s): output[%d] %v vs %v", i, se.Node.Name, j, batchOutputs[i][j], seqOutputs[i][j])
			}
		}
	}

	// Per-frame stats must report the sequential modeled total.
	if got, want := bp.FrameStats().Modeled, seq.LastInvokeStats().Modeled; got != want {
		t.Errorf("FrameStats modeled %v, sequential %v", got, want)
	}
}

func TestBatchInputValidation(t *testing.T) {
	m := buildCNN(t, 15)
	bp, err := NewBatch(m, 2, ops.NewReference(ops.Fixed()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewBatch(m, 0, ops.NewReference(ops.Fixed())); err == nil {
		t.Error("accepted batch 0")
	}
	good := tensor.New(tensor.F32, 1, 8, 8, 3)
	if err := bp.SetInputElem(0, 5, good); err == nil {
		t.Error("accepted out-of-range element")
	}
	if err := bp.SetInputElem(1, 0, good); err == nil {
		t.Error("accepted bad slot")
	}
	if err := bp.SetInputElem(0, 0, tensor.New(tensor.F32, 1, 4, 4, 3)); err == nil {
		t.Error("accepted bad shape")
	}
	if err := bp.SetInputBatch(0, nil); err == nil {
		t.Error("accepted empty batch")
	}
	if err := bp.SetInputBatch(0, []*tensor.Tensor{good, good, good}); err == nil {
		t.Error("accepted oversized batch")
	}
	if _, err := bp.OutputAt(0, 9); err == nil {
		t.Error("accepted bad output element")
	}
	if _, err := bp.OutputAt(3, 0); err == nil {
		t.Error("accepted bad output slot")
	}
	if bp.Batch() != 2 || bp.Model() != m || bp.BatchModel().Tensors[m.Inputs[0]].Shape[0] != 2 {
		t.Error("accessors")
	}
	if bp.ArenaBytes() <= 0 {
		t.Error("ArenaBytes")
	}
}

// TestInvokeSteadyStateAllocationFree pins the zero-allocation contract of
// the planned interpreter: after the first Invoke (which may grow kernel
// caches), Invoke allocates nothing.
func TestInvokeSteadyStateAllocationFree(t *testing.T) {
	for _, resolver := range []*ops.Resolver{ops.NewReference(ops.Fixed()), ops.NewOptimized(ops.Fixed())} {
		m := buildCNN(t, 17)
		ip, err := New(m, resolver)
		if err != nil {
			t.Fatal(err)
		}
		in := tensor.New(tensor.F32, 1, 8, 8, 3)
		in.Fill(0.25)
		if err := ip.SetInput(0, in); err != nil {
			t.Fatal(err)
		}
		if err := ip.Invoke(); err != nil { // warm kernel caches
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(10, func() {
			if err := ip.Invoke(); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%s resolver: steady-state Invoke allocates %.1f objects/op, want 0", resolver.Name(), allocs)
		}
	}
}
