package interp

import (
	"fmt"
	"time"

	"mlexray/internal/graph"
	"mlexray/internal/ops"
	"mlexray/internal/quant"
	"mlexray/internal/tensor"
)

// Batch executes B frames per Invoke through a graph.Rebatch-ed clone of a
// deployment model, amortizing per-node dispatch (kernel lookup, timing,
// arena resets, hook bookkeeping) across the whole batch. It preserves the
// sequential observation contract exactly:
//
//   - Per-frame telemetry. EmitFrame(e) replays the hook events for batch
//     element e in node order, with each event's Outputs sliced to that
//     element along the leading batch dimension — an observer cannot tell a
//     batched frame from a sequentially executed one.
//   - Per-frame modeled latency. Events carry the cost of the *batch-1*
//     node shapes, so device-model projections are bit-identical to a
//     sequential run (a batch-B cost divided by B would not be, because the
//     latency model has per-node constant terms).
//   - Bitwise outputs. Every kernel iterates batch elements independently
//     (or row-independently, for the GEMM lowering), so each element's
//     floating-point summation order matches the batch-1 execution and the
//     outputs are bitwise identical.
//
// Wall-clock ("measured") per-frame values are the per-node batch durations
// divided by B — the only telemetry that differs from a sequential run,
// exactly the class of records no two runs share anyway.
type Batch struct {
	base *graph.Model
	ip   *Interpreter
	n    int

	hook     NodeHook
	latModel LatencyModel

	costs1       []ops.Cost
	nodeModeled  []time.Duration
	frameModeled time.Duration

	// events[e][i] is the pre-built hook event for batch element e, node i;
	// only Measured is filled in at emit time.
	events [][]NodeEvent

	inViews  [][]*tensor.Tensor // [input slot][element]
	outViews [][]*tensor.Tensor // [output slot][element]
}

// NewBatch plans a batch-n executor for the model. The options are the same
// as New's; the hook fires per frame element during EmitFrame rather than
// during Invoke, and the latency model projects batch-1 node costs.
func NewBatch(m *graph.Model, n int, resolver *ops.Resolver, opts ...Option) (*Batch, error) {
	if n < 1 {
		return nil, fmt.Errorf("interp: batch size %d", n)
	}
	rebatched, err := graph.Rebatch(m, n)
	if err != nil {
		return nil, fmt.Errorf("interp: batch %d: %w", n, err)
	}
	// The inner interpreter runs bare of observation options: no hook
	// (events are replayed per frame afterwards) and no latency model
	// (projections use batch-1 costs, computed here). The kernel backend IS
	// threaded through — it changes what the kernels execute.
	var probe Interpreter
	for _, o := range opts {
		o(&probe)
	}
	ip, err := New(rebatched, resolver, WithBackend(probe.backend))
	if err != nil {
		return nil, err
	}
	bp := &Batch{
		base:     m,
		ip:       ip,
		n:        n,
		hook:     probe.hook,
		latModel: probe.latModel,
		costs1:   make([]ops.Cost, len(m.Nodes)),
		events:   make([][]NodeEvent, n),
	}
	shapeOf := func(id int) []int { return m.Tensors[id].Shape }
	sizeOf := func(id int) int { return m.Tensors[id].DType.Size() }
	bp.nodeModeled = make([]time.Duration, len(m.Nodes))
	for i := range m.Nodes {
		bp.costs1[i] = ops.EstimateCostBackend(&m.Nodes[i], ip.kinds[i], probe.backend, shapeOf, sizeOf)
		if bp.latModel != nil {
			bp.nodeModeled[i] = bp.latModel.NodeLatency(m.Nodes[i].Op, ip.kinds[i], resolver.Name(), bp.costs1[i])
			bp.frameModeled += bp.nodeModeled[i]
		}
	}

	bp.inViews = make([][]*tensor.Tensor, len(m.Inputs))
	for slot, id := range m.Inputs {
		bp.inViews[slot] = elementViews(ip.tensors[rebatched.Inputs[slot]], m.Tensors[id].Shape, n)
	}
	bp.outViews = make([][]*tensor.Tensor, len(m.Outputs))
	for slot, id := range m.Outputs {
		bp.outViews[slot] = elementViews(ip.tensors[rebatched.Outputs[slot]], m.Tensors[id].Shape, n)
	}

	// Slice every node output once ([node][output][element]), then assemble
	// the per-element event templates from the shared views.
	nodeViews := make([][][]*tensor.Tensor, len(m.Nodes))
	nodeQuant := make([][]*quant.Params, len(m.Nodes))
	for i := range m.Nodes {
		node := &m.Nodes[i]
		nodeViews[i] = make([][]*tensor.Tensor, len(node.Outputs))
		nodeQuant[i] = make([]*quant.Params, len(node.Outputs))
		for j, id := range node.Outputs {
			bt := ip.tensors[rebatched.Nodes[i].Outputs[j]]
			nodeViews[i][j] = elementViews(bt, m.Tensors[id].Shape, n)
			nodeQuant[i][j] = m.Tensors[id].Quant
		}
	}
	for e := 0; e < n; e++ {
		bp.events[e] = make([]NodeEvent, len(m.Nodes))
		for i := range m.Nodes {
			outs := make([]*tensor.Tensor, len(nodeViews[i]))
			for j := range nodeViews[i] {
				outs[j] = nodeViews[i][j][e]
			}
			bp.events[e][i] = NodeEvent{
				Index: i, Node: &m.Nodes[i], Outputs: outs, OutQuant: nodeQuant[i],
				Kind: ip.kinds[i], Cost: bp.costs1[i], Modeled: bp.nodeModeled[i],
			}
		}
	}
	return bp, nil
}

// elementViews slices a batched tensor into n per-element views with the
// batch-1 shape. Views share storage with the live runtime tensor; observers
// must clone to retain across Invoke calls, same as sequential hooks.
func elementViews(t *tensor.Tensor, baseShape []int, n int) []*tensor.Tensor {
	stride := t.Len() / n
	views := make([]*tensor.Tensor, n)
	for e := 0; e < n; e++ {
		v := &tensor.Tensor{DType: t.DType, Shape: baseShape}
		lo, hi := e*stride, (e+1)*stride
		switch t.DType {
		case tensor.F32:
			v.F = t.F[lo:hi]
		case tensor.U8:
			v.U = t.U[lo:hi]
		case tensor.I8:
			v.I = t.I[lo:hi]
		case tensor.I32:
			v.X = t.X[lo:hi]
		}
		views[e] = v
	}
	return views
}

// Batch returns the planned batch capacity B.
func (bp *Batch) Batch() int { return bp.n }

// Model returns the batch-1 source model.
func (bp *Batch) Model() *graph.Model { return bp.base }

// BatchModel returns the rebatched execution model.
func (bp *Batch) BatchModel() *graph.Model { return bp.ip.Model() }

// ArenaBytes returns the batched interpreter's activation footprint.
func (bp *Batch) ArenaBytes() int { return bp.ip.ArenaBytes() }

// SetInputElem copies t (batch-1 shaped) into element e of input slot i.
func (bp *Batch) SetInputElem(i, e int, t *tensor.Tensor) error {
	if i < 0 || i >= len(bp.inViews) {
		return fmt.Errorf("interp: input %d of %d", i, len(bp.inViews))
	}
	if e < 0 || e >= bp.n {
		return fmt.Errorf("interp: batch element %d of %d", e, bp.n)
	}
	dst := bp.inViews[i][e]
	if dst.DType != t.DType {
		return fmt.Errorf("interp: input %d dtype %v, model wants %v", i, t.DType, dst.DType)
	}
	if !tensor.SameShape(dst.Shape, t.Shape) {
		return fmt.Errorf("interp: input %d shape %v, model wants %v", i, t.Shape, dst.Shape)
	}
	dst.CopyFrom(t)
	return nil
}

// SetInputBatch copies up to B batch-1 tensors into input slot i, elements
// 0..len(elems)-1. Fewer than B elements leaves the tail slots untouched
// (callers replay a partial final batch by padding or by simply not emitting
// the unused elements).
func (bp *Batch) SetInputBatch(i int, elems []*tensor.Tensor) error {
	if len(elems) == 0 || len(elems) > bp.n {
		return fmt.Errorf("interp: %d elements for batch %d", len(elems), bp.n)
	}
	for e, t := range elems {
		if err := bp.SetInputElem(i, e, t); err != nil {
			return err
		}
	}
	return nil
}

// Invoke executes the batched model once — B frames per call.
func (bp *Batch) Invoke() error { return bp.ip.Invoke() }

// EmitFrame replays the per-node hook events for batch element e, in node
// order, against the hook attached at construction. Outputs are per-element
// views; Measured is the node's batch duration split evenly across elements.
func (bp *Batch) EmitFrame(e int) {
	if bp.hook == nil {
		return
	}
	evs := bp.events[e]
	for i := range evs {
		ev := evs[i]
		ev.Measured = bp.ip.measured[i] / time.Duration(bp.n)
		bp.hook(ev)
	}
}

// FrameStats returns the per-frame share of the last Invoke: measured time
// split evenly, and the batch-1 modeled projection (identical to what a
// sequential run reports).
func (bp *Batch) FrameStats() InvokeStats {
	return InvokeStats{
		Measured: bp.ip.last.Measured / time.Duration(bp.n),
		Modeled:  bp.frameModeled,
	}
}

// LastInvokeStats returns the whole-batch totals of the most recent Invoke.
func (bp *Batch) LastInvokeStats() InvokeStats {
	st := bp.ip.last
	st.Modeled = bp.frameModeled * time.Duration(bp.n)
	return st
}

// OutputAt returns the live per-element view of output slot i, element e.
// Clone before mutating or retaining across Invoke calls.
func (bp *Batch) OutputAt(i, e int) (*tensor.Tensor, error) {
	if i < 0 || i >= len(bp.outViews) {
		return nil, fmt.Errorf("interp: output %d of %d", i, len(bp.outViews))
	}
	if e < 0 || e >= bp.n {
		return nil, fmt.Errorf("interp: batch element %d of %d", e, bp.n)
	}
	return bp.outViews[i][e], nil
}
