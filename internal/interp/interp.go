// Package interp executes graph models with a chosen op resolver — the
// TFLite-interpreter analogue. It provides the two capabilities ML-EXray's
// instrumentation layer relies on (§3.2): per-node hooks that observe every
// layer's output tensor, and per-node timing (both wall-clock measured and
// device-model projected).
//
// # Execution planning
//
// New resolves every kernel, allocates the tensor arena AND plans the whole
// dispatch up front: one persistent ops.Ctx per node (input/output tensors
// and quant params pre-resolved) plus a kernel scratch arena pre-sized from
// ops.ScratchPlan. Invoke therefore performs no allocation in steady state —
// kernels draw transient buffers (im2col matrices, per-channel tables,
// dequant staging) from the arena, which is bump-reset before every node.
//
// # Batched execution
//
// Batch (see batch.go) runs B frames per Invoke through a graph.Rebatch-ed
// clone of the model, amortizing per-node dispatch across the batch while
// replaying per-frame hook events from sliced output views, so per-frame
// telemetry is indistinguishable from sequential execution.
package interp

import (
	"fmt"
	"time"

	"mlexray/internal/graph"
	"mlexray/internal/ops"
	"mlexray/internal/quant"
	"mlexray/internal/tensor"
)

// NodeEvent is delivered to hooks after each node executes.
type NodeEvent struct {
	Index   int
	Node    *graph.Node
	Outputs []*tensor.Tensor
	// OutQuant holds the quantization params of each output (nil entries
	// for float tensors), letting observers dequantize captures so per-layer
	// logs are comparable across float and quantized model versions.
	OutQuant []*quant.Params
	Kind     ops.ComputeKind
	Cost     ops.Cost
	Measured time.Duration
	// Modeled is the device-model latency projection; zero when the
	// interpreter has no latency model attached.
	Modeled time.Duration
}

// NodeHook observes node completions. Hooks must not retain the output
// tensors without cloning: the interpreter reuses buffers across Invoke
// calls.
type NodeHook func(ev NodeEvent)

// LatencyModel projects a node's execution time on a simulated device.
type LatencyModel interface {
	NodeLatency(op graph.OpType, kind ops.ComputeKind, resolver string, cost ops.Cost) time.Duration
}

// Option configures an Interpreter.
type Option func(*Interpreter)

// WithHook attaches a per-node observation hook.
func WithHook(h NodeHook) Option { return func(ip *Interpreter) { ip.hook = h } }

// WithLatencyModel attaches a device latency model.
func WithLatencyModel(m LatencyModel) Option { return func(ip *Interpreter) { ip.latModel = m } }

// WithBackend selects the GEMM micro-kernel backend the optimized kernels
// dispatch to. It is a plan-time choice: the per-node contexts, cost
// estimates and scratch reservations are all derived from it in New. The
// default is ops.BackendBlocked.
func WithBackend(b ops.Backend) Option { return func(ip *Interpreter) { ip.backend = b } }

// InvokeStats summarises one Invoke call.
type InvokeStats struct {
	Measured time.Duration
	Modeled  time.Duration
}

// Interpreter holds the planned execution state for one model instance.
type Interpreter struct {
	model    *graph.Model
	resolver *ops.Resolver
	tensors  []*tensor.Tensor
	kinds    []ops.ComputeKind
	kernels  []ops.Kernel
	costs    []ops.Cost
	// ctxs are the persistent per-node kernel contexts; building them once
	// at plan time is what makes Invoke allocation-free.
	ctxs  []ops.Ctx
	arena *ops.Arena
	// measured records the last Invoke's per-node wall-clock durations (the
	// batched executor reads these to attribute per-frame layer latency).
	measured []time.Duration
	hook     NodeHook
	latModel LatencyModel
	backend  ops.Backend
	last     InvokeStats
}

// New validates the model, resolves every kernel up front (so unsupported
// ops fail at construction, not mid-inference), allocates the tensor arena
// and plans the per-node execution contexts and kernel scratch arena.
func New(m *graph.Model, resolver *ops.Resolver, opts ...Option) (*Interpreter, error) {
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("interp: %w", err)
	}
	ip := &Interpreter{
		model:    m,
		resolver: resolver,
		tensors:  make([]*tensor.Tensor, len(m.Tensors)),
		kinds:    make([]ops.ComputeKind, len(m.Nodes)),
		kernels:  make([]ops.Kernel, len(m.Nodes)),
		costs:    make([]ops.Cost, len(m.Nodes)),
		ctxs:     make([]ops.Ctx, len(m.Nodes)),
		measured: make([]time.Duration, len(m.Nodes)),
		arena:    ops.NewArena(),
	}
	for _, o := range opts {
		o(ip)
	}
	for id, info := range m.Tensors {
		if c, ok := m.Consts[id]; ok {
			ip.tensors[id] = c
			continue
		}
		ip.tensors[id] = tensor.New(info.DType, info.Shape...)
	}
	shapeOf := func(id int) []int { return m.Tensors[id].Shape }
	sizeOf := func(id int) int { return m.Tensors[id].DType.Size() }
	var maxF32, maxF64, maxI16, maxIdx int
	for i := range m.Nodes {
		n := &m.Nodes[i]
		kind := ops.KindOf(n, m.Tensors)
		kernel, err := resolver.Lookup(n.Op, kind)
		if err != nil {
			return nil, fmt.Errorf("interp: node %d (%s): %w", i, n.Name, err)
		}
		ip.kinds[i] = kind
		ip.kernels[i] = kernel
		ip.costs[i] = ops.EstimateCostBackend(n, kind, ip.backend, shapeOf, sizeOf)

		inputs := make([]*tensor.Tensor, len(n.Inputs))
		inQ := make([]*quant.Params, len(n.Inputs))
		for j, id := range n.Inputs {
			inputs[j] = ip.tensors[id]
			inQ[j] = m.Tensors[id].Quant
		}
		outputs := make([]*tensor.Tensor, len(n.Outputs))
		outQ := make([]*quant.Params, len(n.Outputs))
		for j, id := range n.Outputs {
			outputs[j] = ip.tensors[id]
			outQ[j] = m.Tensors[id].Quant
		}
		ip.ctxs[i] = ops.Ctx{Node: n, Inputs: inputs, Outputs: outputs, InQ: inQ, OutQ: outQ, Arena: ip.arena, Backend: ip.backend}

		// Scratch is node-scoped (the arena resets between nodes), so the
		// slabs only need to cover the hungriest single node.
		f32, f64, i16, idx := ops.ScratchPlan(n, kind, ip.backend, shapeOf)
		maxF32 = maxInt(maxF32, f32)
		maxF64 = maxInt(maxF64, f64)
		maxI16 = maxInt(maxI16, i16)
		maxIdx = maxInt(maxIdx, idx)
	}
	ip.arena.Reserve(maxF32, maxF64, maxI16, maxIdx)
	return ip, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Model returns the model being executed.
func (ip *Interpreter) Model() *graph.Model { return ip.model }

// Resolver returns the active resolver.
func (ip *Interpreter) Resolver() *ops.Resolver { return ip.resolver }

// Backend returns the planned GEMM kernel backend.
func (ip *Interpreter) Backend() ops.Backend { return ip.backend }

// SetInput copies t into model input slot i.
func (ip *Interpreter) SetInput(i int, t *tensor.Tensor) error {
	if i < 0 || i >= len(ip.model.Inputs) {
		return fmt.Errorf("interp: input %d of %d", i, len(ip.model.Inputs))
	}
	dst := ip.tensors[ip.model.Inputs[i]]
	if dst.DType != t.DType {
		return fmt.Errorf("interp: input %d dtype %v, model wants %v", i, t.DType, dst.DType)
	}
	if !tensor.SameShape(dst.Shape, t.Shape) {
		return fmt.Errorf("interp: input %d shape %v, model wants %v", i, t.Shape, dst.Shape)
	}
	dst.CopyFrom(t)
	return nil
}

// Invoke executes all nodes in order. In steady state it performs no heap
// allocation: contexts are pre-planned and kernel scratch comes from the
// pre-sized arena.
func (ip *Interpreter) Invoke() error {
	var stats InvokeStats
	for i := range ip.ctxs {
		kctx := &ip.ctxs[i]
		ip.arena.Reset()
		start := time.Now()
		if err := ip.kernels[i](kctx); err != nil {
			n := kctx.Node
			return fmt.Errorf("interp: node %d (%s %s): %w", i, n.Op, n.Name, err)
		}
		measured := time.Since(start)
		ip.measured[i] = measured
		var modeled time.Duration
		if ip.latModel != nil {
			modeled = ip.latModel.NodeLatency(kctx.Node.Op, ip.kinds[i], ip.resolver.Name(), ip.costs[i])
		}
		stats.Measured += measured
		stats.Modeled += modeled
		if ip.hook != nil {
			ip.hook(NodeEvent{
				Index: i, Node: kctx.Node, Outputs: kctx.Outputs, OutQuant: kctx.OutQ,
				Kind: ip.kinds[i], Cost: ip.costs[i], Measured: measured, Modeled: modeled,
			})
		}
	}
	ip.last = stats
	return nil
}

// LastInvokeStats returns timing totals of the most recent Invoke.
func (ip *Interpreter) LastInvokeStats() InvokeStats { return ip.last }

// Output returns the live tensor of model output slot i. Clone before
// mutating or retaining across Invoke calls.
func (ip *Interpreter) Output(i int) (*tensor.Tensor, error) {
	if i < 0 || i >= len(ip.model.Outputs) {
		return nil, fmt.Errorf("interp: output %d of %d", i, len(ip.model.Outputs))
	}
	return ip.tensors[ip.model.Outputs[i]], nil
}

// Tensor returns the live runtime tensor with the given table id.
func (ip *Interpreter) Tensor(id int) (*tensor.Tensor, error) {
	if id < 0 || id >= len(ip.tensors) {
		return nil, fmt.Errorf("interp: tensor %d of %d", id, len(ip.tensors))
	}
	return ip.tensors[id], nil
}

// ArenaBytes returns the activation memory footprint (all non-const runtime
// buffers), the interpreter-arena metric of the overhead tables.
func (ip *Interpreter) ArenaBytes() int { return ip.model.ActivationBytes() }

// ScratchBytes returns the kernel scratch arena's slab footprint.
func (ip *Interpreter) ScratchBytes() int { return ip.arena.Bytes() }

// Run is a convenience for single-input single-output models: set, invoke,
// return a clone of the output.
func (ip *Interpreter) Run(in *tensor.Tensor) (*tensor.Tensor, error) {
	if err := ip.SetInput(0, in); err != nil {
		return nil, err
	}
	if err := ip.Invoke(); err != nil {
		return nil, err
	}
	out, err := ip.Output(0)
	if err != nil {
		return nil, err
	}
	return out.Clone(), nil
}
