package interp

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"mlexray/internal/graph"
	"mlexray/internal/ops"
	"mlexray/internal/tensor"
)

// buildCNN constructs a small float conv net: conv(relu) -> dw -> add
// (residual) -> mean -> dense -> softmax.
func buildCNN(t *testing.T, seed int64) *graph.Model {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder("testcnn")
	in := b.Input("input", tensor.F32, 1, 8, 8, 3)

	w1 := tensor.New(tensor.F32, 8, 3, 3, 3)
	tensor.HeInit(rng, w1, 27)
	b1 := tensor.New(tensor.F32, 8)
	pt, pb := graph.SamePadding(8, 3, 1, 1)
	x := b.Node(graph.OpConv2D, "conv1",
		graph.Attrs{StrideH: 1, StrideW: 1, PadT: pt, PadB: pb, PadL: pt, PadR: pb, Activation: graph.ActReLU},
		in, b.Const("conv1/w", w1), b.Const("conv1/b", b1))

	wd := tensor.New(tensor.F32, 1, 3, 3, 8)
	tensor.HeInit(rng, wd, 9)
	bd := tensor.New(tensor.F32, 8)
	y := b.Node(graph.OpDepthwiseConv2D, "dw1",
		graph.Attrs{StrideH: 1, StrideW: 1, PadT: 1, PadB: 1, PadL: 1, PadR: 1, DepthMultiplier: 1, Activation: graph.ActReLU6},
		x, b.Const("dw1/w", wd), b.Const("dw1/b", bd))

	z := b.Node(graph.OpAdd, "res", graph.Attrs{}, x, y)
	g := b.Node(graph.OpMean, "gap", graph.Attrs{}, z)
	wf := tensor.New(tensor.F32, 5, 8)
	tensor.HeInit(rng, wf, 8)
	bf := tensor.New(tensor.F32, 5)
	logits := b.Node(graph.OpDense, "fc", graph.Attrs{}, g, b.Const("fc/w", wf), b.Const("fc/b", bf))
	b.RenameTensor(logits, "logits")
	out := b.Node(graph.OpSoftmax, "softmax", graph.Attrs{Axis: 1}, logits)
	b.Output(out)
	b.Meta(graph.Meta{Task: "classification", InputH: 8, InputW: 8, InputC: 3, NumClasses: 5})
	return b.MustFinish()
}

func TestInterpreterRunsAndIsDeterministic(t *testing.T) {
	m := buildCNN(t, 1)
	ip, err := New(m, ops.NewReference(ops.Fixed()))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	in := tensor.New(tensor.F32, 1, 8, 8, 3)
	tensor.RandUniform(rng, in, -1, 1)
	out1, err := ip.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	out2, err := ip.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for i := range out1.F {
		if out1.F[i] != out2.F[i] {
			t.Fatal("non-deterministic output")
		}
		sum += float64(out1.F[i])
	}
	if math.Abs(sum-1) > 1e-5 {
		t.Errorf("softmax output sums to %v", sum)
	}
	if !out1.IsFinite() {
		t.Error("non-finite output")
	}
}

func TestRefVsOptResolversAgreeOnFloat(t *testing.T) {
	m := buildCNN(t, 3)
	ipRef, err := New(m, ops.NewReference(ops.Fixed()))
	if err != nil {
		t.Fatal(err)
	}
	ipOpt, err := New(m, ops.NewOptimized(ops.Historical()))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 5; trial++ {
		in := tensor.New(tensor.F32, 1, 8, 8, 3)
		tensor.RandUniform(rng, in, -1, 1)
		a, err := ipRef.Run(in)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ipOpt.Run(in)
		if err != nil {
			t.Fatal(err)
		}
		// Historical bugs only affect quantized kernels; float paths agree
		// to float tolerance.
		if !tensor.AllClose(a, b, 1e-4, 1e-5) {
			t.Fatalf("trial %d: resolver outputs diverge: %v vs %v", trial, a.F, b.F)
		}
	}
}

func TestHookSeesEveryNode(t *testing.T) {
	m := buildCNN(t, 5)
	var events []NodeEvent
	ip, err := New(m, ops.NewReference(ops.Fixed()), WithHook(func(ev NodeEvent) {
		events = append(events, ev)
	}))
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.New(tensor.F32, 1, 8, 8, 3)
	if _, err := ip.Run(in); err != nil {
		t.Fatal(err)
	}
	if len(events) != len(m.Nodes) {
		t.Fatalf("hook saw %d events for %d nodes", len(events), len(m.Nodes))
	}
	for i, ev := range events {
		if ev.Index != i {
			t.Errorf("event %d has index %d", i, ev.Index)
		}
		if len(ev.Outputs) == 0 || ev.Outputs[0] == nil {
			t.Errorf("event %d missing outputs", i)
		}
	}
	// Conv node should have positive MACs.
	if events[0].Cost.MACs <= 0 {
		t.Error("conv cost not estimated")
	}
}

type fakeLatency struct{}

func (fakeLatency) NodeLatency(op graph.OpType, kind ops.ComputeKind, resolver string, cost ops.Cost) (d time.Duration) {
	return time.Duration(cost.MACs) // 1ns per MAC
}

func TestLatencyModelIntegration(t *testing.T) {
	m := buildCNN(t, 6)
	ip, err := New(m, ops.NewReference(ops.Fixed()), WithLatencyModel(fakeLatency{}))
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.New(tensor.F32, 1, 8, 8, 3)
	if _, err := ip.Run(in); err != nil {
		t.Fatal(err)
	}
	st := ip.LastInvokeStats()
	if st.Modeled <= 0 {
		t.Error("modeled latency not accumulated")
	}
	if st.Measured <= 0 {
		t.Error("measured latency not accumulated")
	}
}

func TestInputValidation(t *testing.T) {
	m := buildCNN(t, 7)
	ip, err := New(m, ops.NewReference(ops.Fixed()))
	if err != nil {
		t.Fatal(err)
	}
	if err := ip.SetInput(0, tensor.New(tensor.U8, 1, 8, 8, 3)); err == nil {
		t.Error("accepted wrong dtype")
	}
	if err := ip.SetInput(0, tensor.New(tensor.F32, 1, 4, 4, 3)); err == nil {
		t.Error("accepted wrong shape")
	}
	if err := ip.SetInput(5, tensor.New(tensor.F32, 1)); err == nil {
		t.Error("accepted bad input index")
	}
	if _, err := ip.Output(3); err == nil {
		t.Error("accepted bad output index")
	}
	if _, err := ip.Tensor(-1); err == nil {
		t.Error("accepted bad tensor id")
	}
}

func TestUnsupportedOpFailsAtConstruction(t *testing.T) {
	b := graph.NewBuilder("bn")
	in := b.Input("in", tensor.F32, 1, 2, 2, 2)
	one := tensor.New(tensor.F32, 2)
	one.Fill(1)
	zero := tensor.New(tensor.F32, 2)
	x := b.Node(graph.OpBatchNorm, "bn", graph.Attrs{},
		in, b.Const("g", one), b.Const("b", zero), b.Const("m", zero.Clone()), b.Const("v", one.Clone()))
	b.Output(x)
	m := b.MustFinish()
	// Force a quantized compute kind with no registered kernel by marking
	// the input u8 — construction must fail, not Invoke.
	m.Tensors[in].DType = tensor.U8
	if _, err := New(m, ops.NewReference(ops.Fixed())); err == nil {
		t.Error("expected construction error for unsupported quantized batchnorm")
	}
}

func TestNamedTensorAccess(t *testing.T) {
	m := buildCNN(t, 8)
	ip, err := New(m, ops.NewReference(ops.Fixed()))
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.New(tensor.F32, 1, 8, 8, 3)
	in.Fill(0.5)
	if _, err := ip.Run(in); err != nil {
		t.Fatal(err)
	}
	id, err := m.TensorByName("logits")
	if err != nil {
		t.Fatal(err)
	}
	logits, err := ip.Tensor(id)
	if err != nil {
		t.Fatal(err)
	}
	if logits.Len() != 5 {
		t.Errorf("logits len = %d", logits.Len())
	}
	if ip.ArenaBytes() <= 0 {
		t.Error("ArenaBytes")
	}
	if ip.Model() != m || ip.Resolver().Name() != "reference" {
		t.Error("accessors")
	}
}
