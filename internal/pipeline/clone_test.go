package pipeline

import (
	"testing"

	"mlexray/internal/core"
	"mlexray/internal/datasets"
	"mlexray/internal/models"
	"mlexray/internal/ops"
)

// TestClassifierCloneIndependence: a clone owns its own interpreter and
// monitor, predicts identically to its parent, and logs only to its own
// shard.
func TestClassifierCloneIndependence(t *testing.T) {
	m := models.MobileNetV1Mini(99)
	monA := core.NewMonitor()
	base, err := NewClassifier(m, Options{Resolver: ops.NewOptimized(ops.Fixed()), Monitor: monA})
	if err != nil {
		t.Fatal(err)
	}
	monB := core.NewMonitor()
	clone, err := base.Clone(monB)
	if err != nil {
		t.Fatal(err)
	}
	if clone.Interpreter() == base.Interpreter() {
		t.Fatal("clone shares the parent's interpreter")
	}
	s := datasets.SynthImageNet(5555, 1)[0]
	pBase, _, err := base.Classify(s.Image)
	if err != nil {
		t.Fatal(err)
	}
	pClone, _, err := clone.Classify(s.Image)
	if err != nil {
		t.Fatal(err)
	}
	if pBase != pClone {
		t.Errorf("clone predicted %d, parent %d", pClone, pBase)
	}
	if na, nb := len(monA.Log().Records), len(monB.Log().Records); na != nb || nb == 0 {
		t.Errorf("shard logs diverge: parent=%d clone=%d", na, nb)
	}
}

// TestTextClassifierCloneKeepsBug: cloning a bugged text pipeline must not
// stack the lowercase wrapper a second time, and must keep the bug active.
func TestTextClassifierCloneKeepsBug(t *testing.T) {
	m := models.NNLMMini(99, datasets.TextSeqLen, datasets.TextVocabSize)
	var calls int
	countingTok := func(s string) []int32 {
		calls++
		return datasets.TokenizeText(s)
	}
	base, err := NewTextClassifier(m, countingTok,
		Options{Resolver: ops.NewOptimized(ops.Fixed()), Bug: BugLowercase})
	if err != nil {
		t.Fatal(err)
	}
	clone, err := base.Clone(nil)
	if err != nil {
		t.Fatal(err)
	}
	if clone.opts.Bug != BugLowercase {
		t.Fatal("clone dropped the injected bug")
	}
	s := datasets.SynthIMDB(9999, 1)[0]
	pBase, _, err := base.ClassifyText(s.Text)
	if err != nil {
		t.Fatal(err)
	}
	calls = 0
	pClone, _, err := clone.ClassifyText(s.Text)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Errorf("clone called the tokenizer %d times per frame, want 1 (no double wrapping)", calls)
	}
	if pBase != pClone {
		t.Errorf("clone predicted %d, parent %d", pClone, pBase)
	}
}
