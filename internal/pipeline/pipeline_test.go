package pipeline

import (
	"math/rand"
	"testing"

	"mlexray/internal/core"
	"mlexray/internal/datasets"
	"mlexray/internal/device"
	"mlexray/internal/dsp"
	"mlexray/internal/graph"
	"mlexray/internal/imaging"
	"mlexray/internal/models"
	"mlexray/internal/ops"
	"mlexray/internal/tensor"
)

func TestCorrectImagePreprocFromMeta(t *testing.T) {
	meta := graph.Meta{Resize: "area", ChannelOrder: "BGR", NormLo: 0, NormHi: 1}
	pp, err := CorrectImagePreproc(meta)
	if err != nil {
		t.Fatal(err)
	}
	if pp.Resize != imaging.ResizeArea || pp.Order != imaging.BGR || pp.Norm.Hi != 1 {
		t.Errorf("preproc = %+v", pp)
	}
	if _, err := CorrectImagePreproc(graph.Meta{Resize: "wat"}); err == nil {
		t.Error("accepted unknown resize kind")
	}
}

func TestWithBugMutations(t *testing.T) {
	base := ImagePreproc{Resize: imaging.ResizeArea, Order: imaging.RGB, Norm: imaging.NormSymmetric}
	if b := base.WithBug(BugResize); b.Resize != imaging.ResizeBilinear {
		t.Error("resize bug")
	}
	if b := base.WithBug(BugChannel); b.Order != imaging.BGR {
		t.Error("channel bug")
	}
	if b := base.WithBug(BugNormalization); b.Norm != imaging.NormUnit {
		t.Error("normalization bug")
	}
	if b := base.WithBug(BugRotation); b.Rotation != imaging.Rotate90 {
		t.Error("rotation bug")
	}
	if b := base.WithBug(BugNone); b != base {
		t.Error("BugNone changed preprocessing")
	}
	// Bugs invert relative to the model's own convention.
	bgr := ImagePreproc{Resize: imaging.ResizeBilinear, Order: imaging.BGR, Norm: imaging.NormUnit}
	if b := bgr.WithBug(BugChannel); b.Order != imaging.RGB {
		t.Error("channel bug on BGR model")
	}
	if b := bgr.WithBug(BugResize); b.Resize != imaging.ResizeArea {
		t.Error("resize bug on bilinear model")
	}
	if b := bgr.WithBug(BugNormalization); b.Norm != imaging.NormSymmetric {
		t.Error("normalization bug on [0,1] model")
	}
}

func TestPreprocessImageShapes(t *testing.T) {
	meta := graph.Meta{InputH: 28, InputW: 28, InputC: 3, Resize: "area", ChannelOrder: "RGB", NormLo: -1, NormHi: 1}
	pp, _ := CorrectImagePreproc(meta)
	im := imaging.NewImage(64, 64, 3)
	out := PreprocessImage(im, meta, pp)
	if !tensor.SameShape(out.Shape, []int{1, 28, 28, 3}) {
		t.Errorf("shape = %v", out.Shape)
	}
	// Rotated capture of a square image keeps the model shape.
	out = PreprocessImage(im, meta, pp.WithBug(BugRotation))
	if !tensor.SameShape(out.Shape, []int{1, 28, 28, 3}) {
		t.Errorf("rotated shape = %v", out.Shape)
	}
}

func TestSpeechPreprocFromMeta(t *testing.T) {
	pp, err := CorrectSpeechPreproc(graph.Meta{SpecNorm: "per-utterance"})
	if err != nil || pp.Config.Norm != dsp.SpecNormPerUtterance {
		t.Errorf("preproc = %+v, %v", pp, err)
	}
	if _, err := CorrectSpeechPreproc(graph.Meta{SpecNorm: "wat"}); err == nil {
		t.Error("accepted unknown convention")
	}
	bugged := pp.WithBug(BugSpecNorm)
	if bugged.Config.Norm != dsp.SpecNormLogGlobal {
		t.Error("spec norm bug should flip the convention")
	}
}

// tinyClassifier builds an untrained classifier for pipeline plumbing tests.
func tinyClassifier() *graph.Model {
	return models.MobileNetV1Mini(99)
}

func TestClassifierPipelineInstrumented(t *testing.T) {
	m := tinyClassifier()
	mon := core.NewMonitor(core.WithCaptureMode(core.CaptureFull))
	sensor := &device.OrientationSensor{Degrees: 90}
	cl, err := NewClassifier(m, Options{
		Resolver: ops.NewOptimized(ops.Fixed()), Monitor: mon,
		Bug: BugRotation, Orientation: sensor, Device: device.Pixel4(),
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	im := imaging.NewImage(64, 64, 3)
	for i := range im.Pix {
		im.Pix[i] = uint8(rng.Intn(256))
	}
	pred, scores, err := cl.Classify(im)
	if err != nil {
		t.Fatal(err)
	}
	if pred < 0 || pred >= 10 || scores.Len() != 10 {
		t.Errorf("pred=%d scores=%v", pred, scores.Shape)
	}
	l := mon.Log()
	if len(l.MetricValues(core.KeySensorOrientation)) != 1 {
		t.Error("orientation sensor not logged")
	}
	if len(l.MetricValues(core.KeyInferenceLatency)) != 1 {
		t.Error("latency not logged")
	}
	if len(l.MetricValues(core.KeyInferenceModeled)) != 1 {
		t.Error("modeled latency not logged")
	}
	if _, err := l.FirstTensor(1, core.KeyPreprocessOutput); err != nil {
		t.Errorf("preprocess output not captured: %v", err)
	}
	if _, err := l.FirstTensor(1, core.KeyModelOutput); err != nil {
		t.Errorf("model output not captured: %v", err)
	}
}

func TestPipelineTaskValidation(t *testing.T) {
	m := tinyClassifier()
	if _, err := NewDetector(m, Options{}); err == nil {
		t.Error("detector accepted classification model")
	}
	if _, err := NewSegmenter(m, Options{}); err == nil {
		t.Error("segmenter accepted classification model")
	}
	if _, err := NewSpeechRecognizer(m, Options{}); err == nil {
		t.Error("speech accepted classification model")
	}
	if _, err := NewTextClassifier(m, datasets.TokenizeText, Options{}); err == nil {
		t.Error("text accepted classification model")
	}
}

func TestDetectorPipeline(t *testing.T) {
	m := models.SSDMini(99)
	det, err := NewDetector(m, Options{Resolver: ops.NewOptimized(ops.Fixed())})
	if err != nil {
		t.Fatal(err)
	}
	im := imaging.NewImage(48, 48, 3)
	scores, boxes, err := det.Detect(im)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.SameShape(scores.Shape, []int{1, 36, 4}) || !tensor.SameShape(boxes.Shape, []int{1, 36, 4}) {
		t.Errorf("shapes %v %v", scores.Shape, boxes.Shape)
	}
}

func TestSegmenterPipeline(t *testing.T) {
	m := models.DeepLabMini(99)
	sg, err := NewSegmenter(m, Options{Resolver: ops.NewOptimized(ops.Fixed())})
	if err != nil {
		t.Fatal(err)
	}
	im := imaging.NewImage(32, 32, 3)
	labels, err := sg.Segment(im)
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != 16*16 {
		t.Errorf("label map size %d", len(labels))
	}
}

func TestSpeechPipeline(t *testing.T) {
	m := models.KWSMini(99, "t", "log-global")
	sr, err := NewSpeechRecognizer(m, Options{Resolver: ops.NewOptimized(ops.Fixed())})
	if err != nil {
		t.Fatal(err)
	}
	wave := dsp.SynthTone(1024, []float64{0.1}, []float64{1}, 0)
	pred, _, err := sr.Recognize(wave)
	if err != nil {
		t.Fatal(err)
	}
	if pred < 0 || pred >= 8 {
		t.Errorf("pred = %d", pred)
	}
}

func TestTextPipelineLowercaseBug(t *testing.T) {
	m := models.NNLMMini(99, datasets.TextSeqLen, datasets.TextVocabSize)
	var captured []string
	tok := func(s string) []int32 {
		captured = append(captured, s)
		return datasets.TokenizeText(s)
	}
	tc, err := NewTextClassifier(m, tok, Options{Resolver: ops.NewOptimized(ops.Fixed()), Bug: BugLowercase})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := tc.ClassifyText("Good Movie"); err != nil {
		t.Fatal(err)
	}
	if len(captured) != 1 || captured[0] != "good movie" {
		t.Errorf("tokenizer saw %q, want lowercased input", captured)
	}
}

func TestDefaultResolverIsHistoricalOptimized(t *testing.T) {
	var o Options
	if o.resolver().Name() != "optimized" {
		t.Error("default resolver should be the optimized production build")
	}
}
