package pipeline

import (
	"fmt"

	"mlexray/internal/core"
	"mlexray/internal/graph"
	"mlexray/internal/imaging"
	"mlexray/internal/interp"
	"mlexray/internal/tensor"
)

// BatchClassifier is the batched-inference variant of Classifier: it runs up
// to Batch() frames per interpreter invoke through a graph.Rebatch-ed model
// replica, amortizing per-node dispatch across the batch. Telemetry is
// emitted per frame in exactly the sequential Classify order — frame
// advance, sensor reading, preprocessing capture, per-layer events (from
// sliced batch views), latency metrics, model output — so a replay through
// BatchClassifier merges byte-identical (modulo wall-clock values) to one
// through Classifier.
type BatchClassifier struct {
	model   *graph.Model
	bip     *interp.Batch
	preproc ImagePreproc
	opts    Options
	batch   int

	// ins retains the per-element preprocessed tensors between the compute
	// pass and the per-frame telemetry emission pass.
	ins   []*tensor.Tensor
	preds []int
}

// NewBatchClassifier builds a batch-capacity classification pipeline for the
// model. Preprocessing, bug injection and monitor semantics match
// NewClassifier frame for frame.
func NewBatchClassifier(m *graph.Model, batch int, opts Options) (*BatchClassifier, error) {
	if m.Meta.Task != "classification" {
		return nil, fmt.Errorf("pipeline: model %q is a %s model", m.Name, m.Meta.Task)
	}
	if batch < 1 {
		return nil, fmt.Errorf("pipeline: batch size %d", batch)
	}
	pp, err := CorrectImagePreproc(m.Meta)
	if err != nil {
		return nil, err
	}
	c := &BatchClassifier{
		model:   m,
		preproc: pp.WithBug(opts.Bug),
		opts:    opts,
		batch:   batch,
		ins:     make([]*tensor.Tensor, batch),
		preds:   make([]int, batch),
	}
	var iopts []interp.Option
	if opts.Monitor != nil {
		iopts = append(iopts, interp.WithHook(opts.Monitor.LayerHook()))
	}
	if opts.Device != nil {
		iopts = append(iopts, interp.WithLatencyModel(opts.Device))
	}
	c.bip, err = interp.NewBatch(m, batch, opts.resolver(), iopts...)
	if err != nil {
		return nil, err
	}
	return c, nil
}

// Batch returns the pipeline's batch capacity.
func (c *BatchClassifier) Batch() int { return c.batch }

// Interpreter exposes the underlying batched interpreter (for memory
// accounting and per-frame stats).
func (c *BatchClassifier) Interpreter() *interp.Batch { return c.bip }

// Preproc returns the active preprocessing configuration.
func (c *BatchClassifier) Preproc() ImagePreproc { return c.preproc }

// Clone builds an independent replica of the pipeline — same model, batch,
// bug and device, but its own interpreter arena and the given monitor — so
// replicas can run frame batches concurrently.
func (c *BatchClassifier) Clone(mon *core.Monitor) (*BatchClassifier, error) {
	opts := c.opts
	opts.Monitor = mon
	return NewBatchClassifier(c.model, c.batch, opts)
}

// ClassifyBatch runs 1..Batch() frames through one batched invoke and
// returns the predicted class per frame. The returned slice is reused by the
// next call. A short final batch pads the unused interpreter slots with the
// last frame (the padded lanes compute but emit no telemetry).
func (c *BatchClassifier) ClassifyBatch(ims []*imaging.Image) ([]int, error) {
	k := len(ims)
	if k == 0 || k > c.batch {
		return nil, fmt.Errorf("pipeline: %d frames for batch %d", k, c.batch)
	}
	for e, im := range ims {
		c.ins[e] = PreprocessImage(im, c.model.Meta, c.preproc)
		if err := c.bip.SetInputElem(0, e, c.ins[e]); err != nil {
			return nil, err
		}
	}
	for e := k; e < c.batch; e++ { // pad the tail so every lane holds valid data
		if err := c.bip.SetInputElem(0, e, c.ins[k-1]); err != nil {
			return nil, err
		}
	}
	if err := c.bip.Invoke(); err != nil {
		return nil, err
	}
	mon := c.opts.Monitor
	for e := 0; e < k; e++ {
		out, err := c.bip.OutputAt(0, e)
		if err != nil {
			return nil, err
		}
		if mon != nil {
			// Mirror the sequential Classify record order exactly.
			mon.NextFrame()
			if c.opts.Orientation != nil {
				mon.LogSensor(core.KeySensorOrientation, c.opts.Orientation.Read(), "deg")
			}
			mon.LogTensor(core.KeyPreprocessOutput, c.ins[e])
			c.bip.EmitFrame(e)
			mon.OnBatchFrame(c.bip.FrameStats(), out)
		}
		c.preds[e] = out.ArgMax()
	}
	return c.preds[:k], nil
}
