package pipeline

import (
	"fmt"

	"mlexray/internal/core"
	"mlexray/internal/graph"
	"mlexray/internal/imaging"
	"mlexray/internal/interp"
	"mlexray/internal/tensor"
)

// BatchClassifier is the batched-inference variant of Classifier: it runs up
// to Batch() frames per interpreter invoke through a graph.Rebatch-ed model
// replica, amortizing per-node dispatch across the batch. Telemetry is
// emitted per frame in exactly the sequential Classify order — frame
// advance, sensor reading, preprocessing capture, per-layer events (from
// sliced batch views), latency metrics, model output — so a replay through
// BatchClassifier merges byte-identical (modulo wall-clock values) to one
// through Classifier.
type BatchClassifier struct {
	model   *graph.Model
	bip     *interp.Batch
	preproc ImagePreproc
	opts    Options
	batch   int

	// ins retains the per-element preprocessed tensors between the compute
	// pass and the per-frame telemetry emission pass.
	ins   []*tensor.Tensor
	preds []int
}

// NewBatchClassifier builds a batch-capacity classification pipeline for the
// model. Preprocessing, bug injection and monitor semantics match
// NewClassifier frame for frame.
func NewBatchClassifier(m *graph.Model, batch int, opts Options) (*BatchClassifier, error) {
	if m.Meta.Task != "classification" {
		return nil, fmt.Errorf("pipeline: model %q is a %s model", m.Name, m.Meta.Task)
	}
	if batch < 1 {
		return nil, fmt.Errorf("pipeline: batch size %d", batch)
	}
	pp, err := CorrectImagePreproc(m.Meta)
	if err != nil {
		return nil, err
	}
	c := &BatchClassifier{
		model:   m,
		preproc: pp.WithBug(opts.Bug),
		opts:    opts,
		batch:   batch,
		ins:     make([]*tensor.Tensor, batch),
		preds:   make([]int, batch),
	}
	var iopts []interp.Option
	if opts.Monitor != nil {
		iopts = append(iopts, interp.WithHook(opts.Monitor.LayerHook()))
	}
	if opts.Device != nil {
		iopts = append(iopts, interp.WithLatencyModel(opts.Device))
	}
	c.bip, err = interp.NewBatch(m, batch, opts.resolver(), iopts...)
	if err != nil {
		return nil, err
	}
	return c, nil
}

// Batch returns the pipeline's batch capacity.
func (c *BatchClassifier) Batch() int { return c.batch }

// Interpreter exposes the underlying batched interpreter (for memory
// accounting and per-frame stats).
func (c *BatchClassifier) Interpreter() *interp.Batch { return c.bip }

// Preproc returns the active preprocessing configuration.
func (c *BatchClassifier) Preproc() ImagePreproc { return c.preproc }

// Clone builds an independent replica of the pipeline — same model, batch,
// bug and device, but its own interpreter arena and the given monitor — so
// replicas can run frame batches concurrently.
func (c *BatchClassifier) Clone(mon *core.Monitor) (*BatchClassifier, error) {
	opts := c.opts
	opts.Monitor = mon
	return NewBatchClassifier(c.model, c.batch, opts)
}

// ClassifyBatch runs 1..Batch() frames through one batched invoke and
// returns the predicted class per frame. The returned slice is reused by the
// next call. A short final batch pads the unused interpreter slots with the
// last frame (the padded lanes compute but emit no telemetry).
func (c *BatchClassifier) ClassifyBatch(ims []*imaging.Image) ([]int, error) {
	k := len(ims)
	if k == 0 || k > c.batch {
		return nil, fmt.Errorf("pipeline: %d frames for batch %d", k, c.batch)
	}
	for e, im := range ims {
		c.ins[e] = PreprocessImage(im, c.model.Meta, c.preproc)
		if err := c.bip.SetInputElem(0, e, c.ins[e]); err != nil {
			return nil, err
		}
	}
	for e := k; e < c.batch; e++ { // pad the tail so every lane holds valid data
		if err := c.bip.SetInputElem(0, e, c.ins[k-1]); err != nil {
			return nil, err
		}
	}
	if err := c.bip.Invoke(); err != nil {
		return nil, err
	}
	mon := c.opts.Monitor
	for e := 0; e < k; e++ {
		out, err := c.bip.OutputAt(0, e)
		if err != nil {
			return nil, err
		}
		if mon != nil {
			// Mirror the sequential Classify record order exactly.
			mon.NextFrame()
			if c.opts.Orientation != nil {
				mon.LogSensor(core.KeySensorOrientation, c.opts.Orientation.Read(), "deg")
			}
			mon.LogTensor(core.KeyPreprocessOutput, c.ins[e])
			c.bip.EmitFrame(e)
			mon.OnBatchFrame(c.bip.FrameStats(), out)
		}
		c.preds[e] = out.ArgMax()
	}
	return c.preds[:k], nil
}

// BatchDetector is the batched-inference variant of Detector: up to Batch()
// frames per interpreter invoke through a graph.Rebatch-ed replica of the
// SSD-style model, with the two-output head (class scores, box offsets)
// decoded per element through interp.Batch.OutputAt. Telemetry comes out in
// exactly the sequential Detect record order — frame advance, preprocessing
// capture, per-layer events from sliced batch views, latency metrics, the
// score output — so batched detection replays merge byte-identical (modulo
// wall-clock values) to frame-at-a-time ones.
type BatchDetector struct {
	model   *graph.Model
	bip     *interp.Batch
	preproc ImagePreproc
	opts    Options
	batch   int

	ins    []*tensor.Tensor
	scores []*tensor.Tensor
	boxes  []*tensor.Tensor
}

// NewBatchDetector builds a batch-capacity detection pipeline for the model.
// Preprocessing, bug injection and monitor semantics match NewDetector frame
// for frame.
func NewBatchDetector(m *graph.Model, batch int, opts Options) (*BatchDetector, error) {
	if m.Meta.Task != "detection" {
		return nil, fmt.Errorf("pipeline: model %q is a %s model", m.Name, m.Meta.Task)
	}
	if batch < 1 {
		return nil, fmt.Errorf("pipeline: batch size %d", batch)
	}
	pp, err := CorrectImagePreproc(m.Meta)
	if err != nil {
		return nil, err
	}
	d := &BatchDetector{
		model:   m,
		preproc: pp.WithBug(opts.Bug),
		opts:    opts,
		batch:   batch,
		ins:     make([]*tensor.Tensor, batch),
		scores:  make([]*tensor.Tensor, batch),
		boxes:   make([]*tensor.Tensor, batch),
	}
	var iopts []interp.Option
	if opts.Monitor != nil {
		iopts = append(iopts, interp.WithHook(opts.Monitor.LayerHook()))
	}
	if opts.Device != nil {
		iopts = append(iopts, interp.WithLatencyModel(opts.Device))
	}
	d.bip, err = interp.NewBatch(m, batch, opts.resolver(), iopts...)
	if err != nil {
		return nil, err
	}
	return d, nil
}

// Batch returns the pipeline's batch capacity.
func (d *BatchDetector) Batch() int { return d.batch }

// Interpreter exposes the underlying batched interpreter.
func (d *BatchDetector) Interpreter() *interp.Batch { return d.bip }

// Preproc returns the active preprocessing configuration.
func (d *BatchDetector) Preproc() ImagePreproc { return d.preproc }

// Clone builds an independent replica of the pipeline with its own
// interpreter arena and the given monitor (see BatchClassifier.Clone).
func (d *BatchDetector) Clone(mon *core.Monitor) (*BatchDetector, error) {
	opts := d.opts
	opts.Monitor = mon
	return NewBatchDetector(d.model, d.batch, opts)
}

// DetectBatch runs 1..Batch() frames through one batched invoke and returns
// each frame's raw class scores [A, C] and box offsets [A, 4], decoded per
// element from the two output slots. The returned slices are reused by the
// next call; the tensors are clones, safe to retain. A short final batch
// pads the unused interpreter lanes with the last frame (padded lanes
// compute but emit no telemetry).
func (d *BatchDetector) DetectBatch(ims []*imaging.Image) (scores, boxes []*tensor.Tensor, err error) {
	k := len(ims)
	if k == 0 || k > d.batch {
		return nil, nil, fmt.Errorf("pipeline: %d frames for batch %d", k, d.batch)
	}
	for e, im := range ims {
		d.ins[e] = PreprocessImage(im, d.model.Meta, d.preproc)
		if err := d.bip.SetInputElem(0, e, d.ins[e]); err != nil {
			return nil, nil, err
		}
	}
	for e := k; e < d.batch; e++ { // pad the tail so every lane holds valid data
		if err := d.bip.SetInputElem(0, e, d.ins[k-1]); err != nil {
			return nil, nil, err
		}
	}
	if err := d.bip.Invoke(); err != nil {
		return nil, nil, err
	}
	mon := d.opts.Monitor
	for e := 0; e < k; e++ {
		s, err := d.bip.OutputAt(0, e)
		if err != nil {
			return nil, nil, err
		}
		b, err := d.bip.OutputAt(1, e)
		if err != nil {
			return nil, nil, err
		}
		if mon != nil {
			// Mirror the sequential Detect record order exactly (its
			// OnInferenceStop logs output slot 0 — the scores).
			mon.NextFrame()
			mon.LogTensor(core.KeyPreprocessOutput, d.ins[e])
			d.bip.EmitFrame(e)
			mon.OnBatchFrame(d.bip.FrameStats(), s)
		}
		d.scores[e] = s.Clone()
		d.boxes[e] = b.Clone()
	}
	return d.scores[:k], d.boxes[:k], nil
}
