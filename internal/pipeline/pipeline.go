package pipeline

import (
	"fmt"

	"mlexray/internal/core"
	"mlexray/internal/device"
	"mlexray/internal/graph"
	"mlexray/internal/imaging"
	"mlexray/internal/interp"
	"mlexray/internal/ops"
	"mlexray/internal/tensor"
)

// Options configures a pipeline instance.
type Options struct {
	// Resolver selects the kernel set (optimized vs reference, historical
	// defects vs fixed). Defaults to the optimized historical resolver —
	// what a production app of the paper's era shipped.
	Resolver *ops.Resolver
	// Device attaches a latency model (nil = wall-clock only).
	Device *device.Profile
	// Monitor receives telemetry (nil = uninstrumented).
	Monitor *core.Monitor
	// Bug injects one deployment bug into preprocessing.
	Bug Bug
	// Orientation simulates the capture orientation sensor reading; only
	// meaningful alongside BugRotation.
	Orientation *device.OrientationSensor
	// Backend selects the kernel micro-kernel backend the optimized
	// resolver's conv/dense/depthwise kernels dispatch to (plan-time; the
	// zero value is ops.BackendBlocked). Inert under the reference resolver,
	// whose kernels sit before the backend seam.
	Backend ops.Backend
}

func (o *Options) resolver() *ops.Resolver {
	if o.Resolver != nil {
		return o.Resolver
	}
	return ops.NewOptimized(ops.Historical())
}

// Classifier is an instrumented image-classification pipeline.
type Classifier struct {
	model   *graph.Model
	ip      *interp.Interpreter
	preproc ImagePreproc
	opts    Options
}

// NewClassifier builds a classification pipeline for the model. The
// preprocessing starts from the model's correct conventions with opts.Bug
// applied.
func NewClassifier(m *graph.Model, opts Options) (*Classifier, error) {
	if m.Meta.Task != "classification" {
		return nil, fmt.Errorf("pipeline: model %q is a %s model", m.Name, m.Meta.Task)
	}
	pp, err := CorrectImagePreproc(m.Meta)
	if err != nil {
		return nil, err
	}
	c := &Classifier{model: m, preproc: pp.WithBug(opts.Bug), opts: opts}
	c.ip, err = newInterp(m, &opts)
	if err != nil {
		return nil, err
	}
	return c, nil
}

func newInterp(m *graph.Model, opts *Options) (*interp.Interpreter, error) {
	var iopts []interp.Option
	if opts.Monitor != nil {
		iopts = append(iopts, interp.WithHook(opts.Monitor.LayerHook()))
	}
	if opts.Device != nil {
		iopts = append(iopts, interp.WithLatencyModel(opts.Device))
	}
	iopts = append(iopts, interp.WithBackend(opts.Backend))
	return interp.New(m, opts.resolver(), iopts...)
}

// Clone builds an independent replica of the pipeline — same model, bug and
// device, but its own interpreter arena and the given monitor — so replicas
// can run frames concurrently. The model, resolver and const tensors are
// shared read-only.
func (c *Classifier) Clone(mon *core.Monitor) (*Classifier, error) {
	opts := c.opts
	opts.Monitor = mon
	return NewClassifier(c.model, opts)
}

// Interpreter exposes the underlying interpreter (for memory accounting).
func (c *Classifier) Interpreter() *interp.Interpreter { return c.ip }

// Preproc returns the active preprocessing configuration.
func (c *Classifier) Preproc() ImagePreproc { return c.preproc }

// Classify runs one frame through the instrumented pipeline and returns the
// predicted class and scores.
func (c *Classifier) Classify(im *imaging.Image) (int, *tensor.Tensor, error) {
	mon := c.opts.Monitor
	if mon != nil {
		mon.NextFrame()
		if c.opts.Orientation != nil {
			mon.LogSensor(core.KeySensorOrientation, c.opts.Orientation.Read(), "deg")
		}
	}
	in := PreprocessImage(im, c.model.Meta, c.preproc)
	if mon != nil {
		mon.LogTensor(core.KeyPreprocessOutput, in)
		mon.OnInferenceStart()
	}
	out, err := c.runModel(in)
	if err != nil {
		return 0, nil, err
	}
	if mon != nil {
		mon.OnInferenceStop(c.ip)
	}
	return out.ArgMax(), out, nil
}

func (c *Classifier) runModel(in *tensor.Tensor) (*tensor.Tensor, error) {
	return c.ip.Run(in)
}

// Detector is an instrumented object-detection pipeline (SSD-style models
// with class-score and box-offset outputs).
type Detector struct {
	model   *graph.Model
	ip      *interp.Interpreter
	preproc ImagePreproc
	opts    Options
}

// NewDetector builds a detection pipeline.
func NewDetector(m *graph.Model, opts Options) (*Detector, error) {
	if m.Meta.Task != "detection" {
		return nil, fmt.Errorf("pipeline: model %q is a %s model", m.Name, m.Meta.Task)
	}
	pp, err := CorrectImagePreproc(m.Meta)
	if err != nil {
		return nil, err
	}
	d := &Detector{model: m, preproc: pp.WithBug(opts.Bug), opts: opts}
	d.ip, err = newInterp(m, &opts)
	if err != nil {
		return nil, err
	}
	return d, nil
}

// Clone builds an independent replica with its own interpreter arena and the
// given monitor (see Classifier.Clone).
func (d *Detector) Clone(mon *core.Monitor) (*Detector, error) {
	opts := d.opts
	opts.Monitor = mon
	return NewDetector(d.model, opts)
}

// Detect runs one frame and returns raw class scores [A, C] and box offsets
// [A, 4]; decoding/NMS is the caller's postprocessing (models.DecodeDetections).
func (d *Detector) Detect(im *imaging.Image) (scores, boxes *tensor.Tensor, err error) {
	mon := d.opts.Monitor
	if mon != nil {
		mon.NextFrame()
	}
	in := PreprocessImage(im, d.model.Meta, d.preproc)
	if mon != nil {
		mon.LogTensor(core.KeyPreprocessOutput, in)
		mon.OnInferenceStart()
	}
	if err := d.ip.SetInput(0, in); err != nil {
		return nil, nil, err
	}
	if err := d.ip.Invoke(); err != nil {
		return nil, nil, err
	}
	if mon != nil {
		mon.OnInferenceStop(d.ip)
	}
	s, err := d.ip.Output(0)
	if err != nil {
		return nil, nil, err
	}
	b, err := d.ip.Output(1)
	if err != nil {
		return nil, nil, err
	}
	return s.Clone(), b.Clone(), nil
}

// Segmenter is an instrumented segmentation pipeline.
type Segmenter struct {
	model   *graph.Model
	ip      *interp.Interpreter
	preproc ImagePreproc
	opts    Options
}

// NewSegmenter builds a segmentation pipeline.
func NewSegmenter(m *graph.Model, opts Options) (*Segmenter, error) {
	if m.Meta.Task != "segmentation" {
		return nil, fmt.Errorf("pipeline: model %q is a %s model", m.Name, m.Meta.Task)
	}
	pp, err := CorrectImagePreproc(m.Meta)
	if err != nil {
		return nil, err
	}
	s := &Segmenter{model: m, preproc: pp.WithBug(opts.Bug), opts: opts}
	s.ip, err = newInterp(m, &opts)
	if err != nil {
		return nil, err
	}
	return s, nil
}

// Clone builds an independent replica with its own interpreter arena and the
// given monitor (see Classifier.Clone).
func (s *Segmenter) Clone(mon *core.Monitor) (*Segmenter, error) {
	opts := s.opts
	opts.Monitor = mon
	return NewSegmenter(s.model, opts)
}

// Segment returns the per-pixel argmax label map.
func (s *Segmenter) Segment(im *imaging.Image) ([]int32, error) {
	mon := s.opts.Monitor
	if mon != nil {
		mon.NextFrame()
	}
	in := PreprocessImage(im, s.model.Meta, s.preproc)
	if mon != nil {
		mon.LogTensor(core.KeyPreprocessOutput, in)
		mon.OnInferenceStart()
	}
	out, err := s.ip.Run(in)
	if err != nil {
		return nil, err
	}
	if mon != nil {
		mon.OnInferenceStop(s.ip)
	}
	// out is [1, h, w, C]: argmax over the class axis.
	h, w, c := out.Shape[1], out.Shape[2], out.Shape[3]
	labels := make([]int32, h*w)
	for i := 0; i < h*w; i++ {
		best := 0
		for cc := 1; cc < c; cc++ {
			if out.F[i*c+cc] > out.F[i*c+best] {
				best = cc
			}
		}
		labels[i] = int32(best)
	}
	return labels, nil
}

// SpeechRecognizer is an instrumented keyword-spotting pipeline.
type SpeechRecognizer struct {
	model   *graph.Model
	ip      *interp.Interpreter
	preproc SpeechPreproc
	opts    Options
}

// NewSpeechRecognizer builds a speech pipeline.
func NewSpeechRecognizer(m *graph.Model, opts Options) (*SpeechRecognizer, error) {
	if m.Meta.Task != "speech" {
		return nil, fmt.Errorf("pipeline: model %q is a %s model", m.Name, m.Meta.Task)
	}
	pp, err := CorrectSpeechPreproc(m.Meta)
	if err != nil {
		return nil, err
	}
	s := &SpeechRecognizer{model: m, preproc: pp.WithBug(opts.Bug), opts: opts}
	s.ip, err = newInterp(m, &opts)
	if err != nil {
		return nil, err
	}
	return s, nil
}

// Clone builds an independent replica with its own interpreter arena and the
// given monitor (see Classifier.Clone).
func (s *SpeechRecognizer) Clone(mon *core.Monitor) (*SpeechRecognizer, error) {
	opts := s.opts
	opts.Monitor = mon
	return NewSpeechRecognizer(s.model, opts)
}

// Recognize classifies one waveform.
func (s *SpeechRecognizer) Recognize(wave []float64) (int, *tensor.Tensor, error) {
	mon := s.opts.Monitor
	if mon != nil {
		mon.NextFrame()
	}
	in, err := PreprocessSpeech(wave, s.preproc)
	if err != nil {
		return 0, nil, err
	}
	if mon != nil {
		mon.LogTensor(core.KeyPreprocessOutput, in)
		mon.OnInferenceStart()
	}
	out, err := s.ip.Run(in)
	if err != nil {
		return 0, nil, err
	}
	if mon != nil {
		mon.OnInferenceStop(s.ip)
	}
	return out.ArgMax(), out, nil
}

// TextClassifier is an instrumented sentiment pipeline.
type TextClassifier struct {
	model *graph.Model
	ip    *interp.Interpreter
	opts  Options
	// tokenize maps raw text to ids; the BugLowercase variant folds case
	// first (the §A experiment). origTok keeps the unwrapped tokenizer so
	// Clone can rebuild without stacking the bug twice.
	tokenize func(string) []int32
	origTok  func(string) []int32
}

// NewTextClassifier builds a text pipeline. tokenizer maps text to fixed-
// length token ids (datasets.TokenizeText for the synthetic vocab).
func NewTextClassifier(m *graph.Model, tokenizer func(string) []int32, opts Options) (*TextClassifier, error) {
	if m.Meta.Task != "text" {
		return nil, fmt.Errorf("pipeline: model %q is a %s model", m.Name, m.Meta.Task)
	}
	t := &TextClassifier{model: m, opts: opts, tokenize: tokenizer, origTok: tokenizer}
	if opts.Bug == BugLowercase {
		inner := tokenizer
		t.tokenize = func(s string) []int32 { return inner(lowercase(s)) }
	}
	var err error
	t.ip, err = newInterp(m, &opts)
	if err != nil {
		return nil, err
	}
	return t, nil
}

func lowercase(s string) string {
	b := []byte(s)
	for i := range b {
		if b[i] >= 'A' && b[i] <= 'Z' {
			b[i] += 'a' - 'A'
		}
	}
	return string(b)
}

// Clone builds an independent replica with its own interpreter arena and the
// given monitor (see Classifier.Clone).
func (t *TextClassifier) Clone(mon *core.Monitor) (*TextClassifier, error) {
	opts := t.opts
	opts.Monitor = mon
	return NewTextClassifier(t.model, t.origTok, opts)
}

// ClassifyText runs one review through the pipeline.
func (t *TextClassifier) ClassifyText(text string) (int, *tensor.Tensor, error) {
	mon := t.opts.Monitor
	if mon != nil {
		mon.NextFrame()
	}
	ids := t.tokenize(text)
	in := tensor.FromInt32(ids, 1, len(ids))
	if mon != nil {
		mon.LogTensor(core.KeyPreprocessOutput, in)
		mon.OnInferenceStart()
	}
	out, err := t.ip.Run(in)
	if err != nil {
		return 0, nil, err
	}
	if mon != nil {
		mon.OnInferenceStop(t.ip)
	}
	return out.ArgMax(), out, nil
}
