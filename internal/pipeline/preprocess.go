// Package pipeline implements the inference pipelines of the evaluation
// apps: sensor capture → preprocessing → model invocation → postprocessing,
// instrumented with the ML-EXray monitor. The preprocessing stage is
// configurable, which is where the paper's deployment-bug classes (§2) are
// injected; the *reference* pipeline for a model is simply the pipeline
// configured from the model's own Meta — the training conventions (§3.3).
package pipeline

import (
	"fmt"

	"mlexray/internal/dsp"
	"mlexray/internal/graph"
	"mlexray/internal/imaging"
	"mlexray/internal/tensor"
)

// Bug enumerates the injectable deployment bugs of Figure 3 / Figure 4.
type Bug string

const (
	BugNone          Bug = "none"
	BugResize        Bug = "resize"        // wrong resampling filter
	BugChannel       Bug = "channel"       // swapped channel order
	BugNormalization Bug = "normalization" // wrong numerical range
	BugRotation      Bug = "rotation"      // disoriented capture
	BugSpecNorm      Bug = "specnorm"      // wrong spectrogram normalization
	BugLowercase     Bug = "lowercase"     // case folding before tokenization
)

// AllImageBugs lists the image-pipeline bug classes in the paper's severity
// presentation order.
var AllImageBugs = []Bug{BugResize, BugChannel, BugNormalization, BugRotation}

// ImagePreproc describes the image preprocessing an app performs.
type ImagePreproc struct {
	Resize   imaging.ResizeKind
	Order    imaging.ChannelOrder // channel order fed to the model
	Norm     imaging.NormRange
	Rotation imaging.Rotation // capture orientation relative to training
}

// CorrectImagePreproc derives the correct preprocessing from the model's
// recorded training conventions.
func CorrectImagePreproc(meta graph.Meta) (ImagePreproc, error) {
	rk, err := imaging.ParseResizeKind(meta.Resize)
	if err != nil {
		return ImagePreproc{}, fmt.Errorf("pipeline: model meta: %w", err)
	}
	order := imaging.RGB
	if meta.ChannelOrder == "BGR" {
		order = imaging.BGR
	}
	return ImagePreproc{
		Resize: rk,
		Order:  order,
		Norm:   imaging.NormRange{Lo: meta.NormLo, Hi: meta.NormHi},
	}, nil
}

// WithBug returns the preprocessing with one deployment bug injected.
func (p ImagePreproc) WithBug(bug Bug) ImagePreproc {
	out := p
	switch bug {
	case BugNone:
	case BugResize:
		if p.Resize == imaging.ResizeArea {
			out.Resize = imaging.ResizeBilinear
		} else {
			out.Resize = imaging.ResizeArea
		}
	case BugChannel:
		if p.Order == imaging.RGB {
			out.Order = imaging.BGR
		} else {
			out.Order = imaging.RGB
		}
	case BugNormalization:
		if p.Norm.Lo == -1 {
			out.Norm = imaging.NormUnit
		} else {
			out.Norm = imaging.NormSymmetric
		}
	case BugRotation:
		out.Rotation = imaging.Rotate90
	}
	return out
}

// PreprocessImage runs the full image preprocessing: capture orientation,
// resize to the model input, channel arrangement, numerical conversion.
// The input image is RGB as produced by the dataset generators (i.e. the
// camera stack's extracted RGB); cfg.Order is what the app feeds the model.
func PreprocessImage(im *imaging.Image, meta graph.Meta, cfg ImagePreproc) *tensor.Tensor {
	work := im
	if cfg.Rotation != imaging.Rotate0 {
		work = imaging.Rotate(work, cfg.Rotation)
	}
	work = imaging.Resize(work, meta.InputW, meta.InputH, cfg.Resize)
	if cfg.Order == imaging.BGR {
		work = imaging.SwapRB(work)
	}
	return imaging.ToTensor(work, cfg.Norm)
}

// SpeechPreproc describes the audio feature extraction configuration.
type SpeechPreproc struct {
	Config dsp.SpectrogramConfig
}

// CorrectSpeechPreproc derives the spectrogram configuration from the
// model's recorded training convention.
func CorrectSpeechPreproc(meta graph.Meta) (SpeechPreproc, error) {
	cfg := dsp.DefaultSpectrogram
	switch meta.SpecNorm {
	case "log-global":
		cfg.Norm = dsp.SpecNormLogGlobal
	case "per-utterance":
		cfg.Norm = dsp.SpecNormPerUtterance
	case "none":
		cfg.Norm = dsp.SpecNormNone
	default:
		return SpeechPreproc{}, fmt.Errorf("pipeline: model meta has unknown spectrogram normalization %q", meta.SpecNorm)
	}
	return SpeechPreproc{Config: cfg}, nil
}

// WithBug injects the spectrogram-normalization mismatch of Figure 4c: the
// app uses the *other* training pipeline's convention.
func (p SpeechPreproc) WithBug(bug Bug) SpeechPreproc {
	out := p
	if bug == BugSpecNorm {
		if p.Config.Norm == dsp.SpecNormLogGlobal {
			out.Config.Norm = dsp.SpecNormPerUtterance
		} else {
			out.Config.Norm = dsp.SpecNormLogGlobal
		}
	}
	return out
}

// PreprocessSpeech converts a waveform to the model's spectrogram input.
func PreprocessSpeech(wave []float64, cfg SpeechPreproc) (*tensor.Tensor, error) {
	return dsp.Spectrogram(wave, cfg.Config)
}
