package experiments

import (
	"fmt"
	"io"

	"mlexray/internal/core"
	"mlexray/internal/datasets"
	"mlexray/internal/graph"
	"mlexray/internal/ops"
	"mlexray/internal/pipeline"
	"mlexray/internal/runner"
	"mlexray/internal/zoo"
)

// Figure6Series is one per-layer normalized-rMSE curve: a quantized model
// version (under one resolver) compared layer-by-layer against the float
// mobile baseline.
type Figure6Series struct {
	Model    string
	Resolver string
	Diffs    []core.LayerDiff
	// SpikeLayer is the first drift spike the validator localises.
	SpikeLayer string
	SpikeOp    string
}

// Figure6 reproduces the per-layer diagnosis of §4.4: for MobileNet v2 and
// v3, the quantized model's per-layer output drift against the float
// baseline under both resolvers. Expected shape: v2 spikes at the first
// DepthwiseConv2D under the optimized resolver only; v3 peaks at its
// AvgPool2D layers under both resolvers.
func Figure6(frames int) ([]Figure6Series, error) {
	if frames <= 0 {
		frames = 5
	}
	var out []Figure6Series
	for _, name := range []string{"mobilenetv2-mini", "mobilenetv3-mini"} {
		e, err := zoo.Get(name)
		if err != nil {
			return nil, err
		}
		refLog, err := perLayerLog(e.Mobile, ops.NewReference(ops.Fixed()), frames)
		if err != nil {
			return nil, err
		}
		for _, resolver := range []*ops.Resolver{ops.NewOptimized(ops.Historical()), ops.NewReference(ops.Historical())} {
			edgeLog, err := perLayerLog(e.Quant, resolver, frames)
			if err != nil {
				return nil, err
			}
			diffs, err := core.CompareLayers(edgeLog, refLog)
			if err != nil {
				return nil, err
			}
			s := Figure6Series{Model: name, Resolver: resolver.Name(), Diffs: diffs}
			if spike, ok := core.FirstSpike(diffs, 0.1, 3); ok {
				s.SpikeLayer = spike.Name
				s.SpikeOp = spike.OpType
			}
			out = append(out, s)
		}
	}
	return out, nil
}

// perLayerLog runs the classification pipeline over the evaluation set with
// full per-layer capture, sharded across the replay pool.
func perLayerLog(m *graph.Model, resolver *ops.Resolver, frames int) (*core.Log, error) {
	base, err := pipeline.NewClassifier(m, pipeline.Options{Resolver: resolver})
	if err != nil {
		return nil, err
	}
	samples := datasets.SynthImageNet(5555, frames)
	return replayLog(len(samples), []core.MonitorOption{core.WithCaptureMode(core.CaptureFull), core.WithPerLayer(true)},
		func(mon *core.Monitor) (runner.ProcessFunc, error) {
			cl, err := base.Clone(mon)
			if err != nil {
				return nil, err
			}
			return func(i int) error {
				_, _, err := cl.Classify(samples[i].Image)
				return err
			}, nil
		})
}

// RenderFigure6 prints each series as (layer, op, nRMSE) rows with the
// localised spike.
func RenderFigure6(w io.Writer, series []Figure6Series) {
	fprintf(w, "Figure 6 — per-layer normalized rMSE of quantized vs float baseline\n")
	for _, s := range series {
		fprintf(w, "\n%s under %s resolver (spike: %s %s)\n", s.Model, s.Resolver, s.SpikeLayer, s.SpikeOp)
		for _, d := range s.Diffs {
			bar := ""
			n := int(d.NRMSE * 40)
			if n > 40 {
				n = 40
			}
			for i := 0; i < n; i++ {
				bar += "#"
			}
			fprintf(w, "  [%3d] %-26s %-16s %7.3f %s\n", d.Index, d.Name, d.OpType, d.NRMSE, bar)
		}
	}
}

// Figure6Summary extracts the headline check: which layer each series
// spikes at.
func Figure6Summary(series []Figure6Series) map[string]string {
	out := map[string]string{}
	for _, s := range series {
		out[fmt.Sprintf("%s/%s", s.Model, s.Resolver)] = fmt.Sprintf("%s (%s)", s.SpikeLayer, s.SpikeOp)
	}
	return out
}
