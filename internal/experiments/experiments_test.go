package experiments

import (
	"bytes"
	"flag"
	"os"
	"strings"
	"testing"

	"mlexray/internal/pipeline"
)

// These tests verify the *shape* of each reproduced result — who wins, by
// roughly what factor, where crossovers fall — per DESIGN.md §3. Absolute
// values are recorded in EXPERIMENTS.md, not asserted.
//
// Under -short the sweeps run with reduced frame counts (the shapes are
// already stable well below the full evaluation size); the full sweep runs
// without -short. All sweeps run on the parallel replay engine either way.

// TestMain shrinks the shared evaluation-set size in short mode before any
// test builds a sweep.
func TestMain(m *testing.M) {
	flag.Parse()
	if testing.Short() {
		EvalFrames = 40
	}
	os.Exit(m.Run())
}

// frames picks the full or the -short frame count for a parameterized sweep.
func frames(full, short int) int {
	if testing.Short() {
		return short
	}
	return full
}

func TestFigure4aShape(t *testing.T) {
	rows, err := Figure4a()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d models", len(rows))
	}
	var dropResize, dropRot, dropChan, dropNorm float64
	for _, r := range rows {
		if r.Baseline < 0.75 {
			t.Errorf("%s baseline = %.2f, want healthy (>= 0.75)", r.Model, r.Baseline)
		}
		dropResize += r.Baseline - r.ByBug[pipeline.BugResize]
		dropChan += r.Baseline - r.ByBug[pipeline.BugChannel]
		dropNorm += r.Baseline - r.ByBug[pipeline.BugNormalization]
		dropRot += r.Baseline - r.ByBug[pipeline.BugRotation]
	}
	n := float64(len(rows))
	dropResize, dropChan, dropNorm, dropRot = dropResize/n, dropChan/n, dropNorm/n, dropRot/n
	// Paper's severity ordering: resize is mildest; rotation and
	// normalization are the most damaging; channel sits between.
	if dropResize >= dropChan {
		t.Errorf("resize drop %.3f should be milder than channel drop %.3f", dropResize, dropChan)
	}
	if dropRot <= dropChan {
		t.Errorf("rotation drop %.3f should exceed channel drop %.3f", dropRot, dropChan)
	}
	if dropNorm <= dropResize {
		t.Errorf("normalization drop %.3f should exceed resize drop %.3f", dropNorm, dropResize)
	}
	var buf bytes.Buffer
	RenderFigure4a(&buf, rows)
	if !strings.Contains(buf.String(), "mobilenetv2-mini") {
		t.Error("render missing models")
	}
}

func TestFigure4bShape(t *testing.T) {
	rows, err := Figure4b()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d detectors", len(rows))
	}
	for _, r := range rows {
		if r.Baseline < 0.5 {
			t.Errorf("%s baseline mAP = %.2f, want functional detector", r.Model, r.Baseline)
		}
		// Channel and rotation must hurt; resize stays mild (paper: 0.1%).
		if r.ByBug[pipeline.BugChannel] >= r.Baseline {
			t.Errorf("%s: channel bug did not reduce mAP", r.Model)
		}
		if r.Baseline-r.ByBug[pipeline.BugResize] > 0.25 {
			t.Errorf("%s: resize drop %.2f too large for the mild-bug class", r.Model, r.Baseline-r.ByBug[pipeline.BugResize])
		}
	}
}

func TestFigure4cShape(t *testing.T) {
	rows, err := Figure4c()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d speech models", len(rows))
	}
	for _, r := range rows {
		if r.Baseline < 0.8 {
			t.Errorf("%s baseline = %.2f", r.Model, r.Baseline)
		}
		if r.Baseline-r.WrongNorm < 0.15 {
			t.Errorf("%s: spectrogram normalization mismatch only cost %.2f", r.Model, r.Baseline-r.WrongNorm)
		}
	}
}

func TestFigure5Shape(t *testing.T) {
	rows, err := Figure5()
	if err != nil {
		t.Fatal(err)
	}
	byModel := map[string]Figure5Row{}
	for _, r := range rows {
		byModel[r.Model] = r
		// Reference vs Mobile: conversion costs at most a few points.
		if r.Reference-r.Mobile > 0.05 {
			t.Errorf("%s: conversion dropped %.2f", r.Model, r.Reference-r.Mobile)
		}
	}
	// v1/v2: collapse under the optimized resolver only.
	for _, m := range []string{"mobilenetv1-mini", "mobilenetv2-mini"} {
		r := byModel[m]
		if r.MobileQuant > 0.3 {
			t.Errorf("%s: quant+optimized should collapse, got %.2f", m, r.MobileQuant)
		}
		if r.MobileQuantR < r.Mobile-0.1 {
			t.Errorf("%s: quant+reference should stay near float (%.2f vs %.2f)", m, r.MobileQuantR, r.Mobile)
		}
	}
	// v3: collapses under BOTH resolvers (the average-pool defect).
	v3 := byModel["mobilenetv3-mini"]
	if v3.MobileQuant > 0.3 || v3.MobileQuantR > 0.3 {
		t.Errorf("v3 should collapse under both resolvers: opt=%.2f ref=%.2f", v3.MobileQuant, v3.MobileQuantR)
	}
	// ResNet and Inception: unaffected (no depthwise, short-window pools).
	for _, m := range []string{"resnet-mini", "inception-mini"} {
		r := byModel[m]
		if r.Mobile-r.MobileQuant > 0.1 || r.Mobile-r.MobileQuantR > 0.1 {
			t.Errorf("%s should survive quantization: %.2f / %.2f vs %.2f", m, r.MobileQuant, r.MobileQuantR, r.Mobile)
		}
	}
}

func TestFigure5FixedRepairsEverything(t *testing.T) {
	rows, err := Figure5Fixed()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Mobile-r.MobileQuant > 0.12 {
			t.Errorf("%s: fixed kernels still lose %.2f under quantization", r.Model, r.Mobile-r.MobileQuant)
		}
		if r.Mobile-r.MobileQuantR > 0.12 {
			t.Errorf("%s: fixed reference kernels still lose %.2f", r.Model, r.Mobile-r.MobileQuantR)
		}
	}
}

func TestFigure6Localisation(t *testing.T) {
	series, err := Figure6(frames(3, 2))
	if err != nil {
		t.Fatal(err)
	}
	sum := Figure6Summary(series)
	// v2 under the optimized resolver spikes at a DepthwiseConv2D.
	if got := sum["mobilenetv2-mini/optimized"]; !strings.Contains(got, "DepthwiseConv2D") {
		t.Errorf("v2/optimized spike = %q, want DepthwiseConv2D", got)
	}
	// v2 under the reference resolver is clean: no spike.
	if got := sum["mobilenetv2-mini/reference"]; !strings.Contains(got, "(") || strings.Contains(got, "Conv") {
		if strings.TrimSpace(got) != "()" && got != " ()" {
			t.Errorf("v2/reference should have no spike, got %q", got)
		}
	}
	// v3 under the reference resolver spikes at an AvgPool2D.
	if got := sum["mobilenetv3-mini/reference"]; !strings.Contains(got, "AvgPool2D") {
		t.Errorf("v3/reference spike = %q, want AvgPool2D", got)
	}
	// v2/reference stays below 10% drift everywhere (paper: "always below 10%").
	for _, s := range series {
		if s.Model == "mobilenetv2-mini" && s.Resolver == "reference" {
			for _, d := range s.Diffs {
				if d.NRMSE > 0.1 {
					t.Errorf("v2/reference layer %s drift %.3f exceeds 10%%", d.Name, d.NRMSE)
				}
			}
		}
	}
}

func TestFigure3CoverageMatrix(t *testing.T) {
	cells, err := Figure3(frames(5, 3))
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]Figure3Cell{}
	for _, c := range cells {
		byKey[c.Task+"/"+c.Issue] = c
	}
	// All classification bugs must be caught, with the right assertions.
	for issue, wantAssert := range map[string]string{
		"channel":       "channel-arrangement",
		"normalization": "normalization-range",
		"rotation":      "orientation",
		"quantization":  "quantization-drift",
	} {
		c, ok := byKey["classification/"+issue]
		if !ok || !c.Caught {
			t.Errorf("classification/%s not caught: %+v", issue, c)
			continue
		}
		if !strings.Contains(c.Assertion, wantAssert) {
			t.Errorf("classification/%s assertion = %q, want %s", issue, c.Assertion, wantAssert)
		}
	}
	// Straggler detection fires on the reference-resolver run.
	if c := byKey["classification/latency"]; !c.Caught {
		t.Errorf("latency straggler not caught: %+v", c)
	}
	// Speech normalization mismatch caught.
	if c := byKey["speech/specnorm"]; !c.Caught {
		t.Errorf("speech/specnorm not caught: %+v", c)
	}
	// Text case folding: outputs agree (the §A result) — nothing to catch.
	if c := byKey["text/lowercase"]; c.Agreement < 0.99 {
		t.Errorf("text case folding should not change outputs, agreement = %.2f", c.Agreement)
	}
	var buf bytes.Buffer
	RenderFigure3(&buf, cells)
	if !strings.Contains(buf.String(), "channel") {
		t.Error("render")
	}
}

// TestFleetShape pins the fleet table: the round-robin shares cover the
// frame range, rollups are populated per device, and exactly the bugged
// Pixel3 slot comes back flagged — the cross-device divergence contract.
func TestFleetShape(t *testing.T) {
	n := frames(48, 24)
	rows, err := Fleet(n, "classification")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows, want 3", len(rows))
	}
	total := 0
	for _, r := range rows {
		total += r.Frames
		if r.Frames == 0 {
			t.Errorf("%s got no frames", r.Device)
		}
		if r.MeanModeledMs <= 0 {
			t.Errorf("%s has no modeled-latency rollup", r.Device)
		}
		if (r.Device == "Pixel3") != r.Flagged {
			t.Errorf("%s flagged=%v; only the bugged Pixel3 should be flagged", r.Device, r.Flagged)
		}
		if r.Device == "Pixel3" && r.Agreement >= 0.98 {
			t.Errorf("bugged Pixel3 agreement %.2f, want < 0.98", r.Agreement)
		}
		if r.Device != "Pixel3" && r.Agreement < 0.98 {
			t.Errorf("healthy %s agreement %.2f", r.Device, r.Agreement)
		}
	}
	if total != n {
		t.Errorf("device shares cover %d of %d frames", total, n)
	}
	// The emulator's modeled latency dwarfs the phones' (§4.5: the ARM conv
	// optimizations don't transfer).
	byDev := map[string]FleetRow{}
	for _, r := range rows {
		byDev[r.Device] = r
	}
	if byDev["Emulator-x86"].MeanModeledMs <= byDev["Pixel4"].MeanModeledMs {
		t.Errorf("emulator modeled %.2fms not slower than Pixel4 %.2fms",
			byDev["Emulator-x86"].MeanModeledMs, byDev["Pixel4"].MeanModeledMs)
	}

	var buf bytes.Buffer
	RenderFleet(&buf, "classification", rows)
	if !strings.Contains(buf.String(), "Pixel3") || !strings.Contains(buf.String(), "X") {
		t.Errorf("rendered fleet table misses the flagged device:\n%s", buf.String())
	}
}

func TestTable1LoCAdvantage(t *testing.T) {
	rows := Table1()
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		with := r.WithInst + r.WithAssert
		without := r.WithoutInst + r.WithoutAssert
		if with >= without {
			t.Errorf("%s: with=%d not smaller than without=%d", r.Target, with, without)
		}
		if with > 15 {
			t.Errorf("%s: with-ML-EXray LoC = %d exceeds the paper's <=15 claim", r.Target, with)
		}
	}
	var buf bytes.Buffer
	RenderTable1(&buf, rows)
	if !strings.Contains(buf.String(), "Preprocessing") {
		t.Error("render")
	}
}

func TestTable2OverheadShape(t *testing.T) {
	rows, err := Table2(frames(30, 12))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("%d rows", len(rows))
	}
	byKey := map[string]Table2Row{}
	for _, r := range rows {
		k := r.Device
		if r.Instrumented {
			k += "+inst"
		}
		byKey[k] = r
	}
	// Instrumentation adds a small latency overhead and bounded disk cost.
	for _, dev := range []string{"Pixel4", "Pixel4-GPU", "Pixel3"} {
		base, inst := byKey[dev], byKey[dev+"+inst"]
		if inst.LatMeanMs <= base.LatMeanMs {
			t.Errorf("%s: instrumentation should add latency (%.2f vs %.2f)", dev, inst.LatMeanMs, base.LatMeanMs)
		}
		overhead := (inst.LatMeanMs - base.LatMeanMs) / base.LatMeanMs
		if dev == "Pixel4" && overhead > 0.10 {
			t.Errorf("CPU overhead %.1f%% exceeds the paper's few-percent claim", 100*overhead)
		}
		if inst.DiskKBPerFrm <= 0 || inst.DiskKBPerFrm > 5 {
			t.Errorf("%s: disk = %.2f KB/frame, want small stats-only logs", dev, inst.DiskKBPerFrm)
		}
		if inst.MemoryMB <= base.MemoryMB {
			t.Errorf("%s: instrumentation should add memory", dev)
		}
	}
	// GPU runs are much faster than CPU, so the same logging cost is a
	// bigger relative overhead (the paper's 2.3% vs 15%).
	cpuOv := (byKey["Pixel4+inst"].LatMeanMs - byKey["Pixel4"].LatMeanMs) / byKey["Pixel4"].LatMeanMs
	gpuOv := (byKey["Pixel4-GPU+inst"].LatMeanMs - byKey["Pixel4-GPU"].LatMeanMs) / byKey["Pixel4-GPU"].LatMeanMs
	if gpuOv <= cpuOv {
		t.Errorf("GPU relative overhead (%.3f) should exceed CPU (%.3f)", gpuOv, cpuOv)
	}
	if byKey["Pixel3"].LatMeanMs <= byKey["Pixel4"].LatMeanMs {
		t.Error("Pixel 3 should be slower than Pixel 4")
	}
}

func TestTable3And5Shape(t *testing.T) {
	quant, err := Table3(frames(10, 4))
	if err != nil {
		t.Fatal(err)
	}
	float, err := Table5(frames(10, 4))
	if err != nil {
		t.Fatal(err)
	}
	if len(quant) != 5 || len(float) != 5 {
		t.Fatalf("row counts %d/%d", len(quant), len(float))
	}
	for i := range quant {
		if quant[i].Layers <= 0 || quant[i].Params <= 0 || quant[i].DiskMB <= 0 {
			t.Errorf("degenerate row %+v", quant[i])
		}
		// The binary encoding of the same log is always smaller than JSONL.
		if quant[i].DiskMBBin <= 0 || quant[i].DiskMBBin >= quant[i].DiskMB {
			t.Errorf("%s: binary log %.2fMB not smaller than JSONL %.2fMB",
				quant[i].Model, quant[i].DiskMBBin, quant[i].DiskMB)
		}
		// Float per-layer logs are substantially larger than quantized ones
		// (f32 vs u8 payloads) — the Table 3 vs Table 5 relationship.
		if float[i].DiskMB <= quant[i].DiskMB {
			t.Errorf("%s: float log %.2fMB not larger than quant %.2fMB",
				float[i].Model, float[i].DiskMB, quant[i].DiskMB)
		}
	}
}

func TestTable4Shape(t *testing.T) {
	rows, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	byClass := map[string]Table4Row{}
	for _, r := range rows {
		byClass[r.Class] = r
	}
	dconv, ok := byClass["D-Conv"]
	if !ok {
		t.Fatal("no D-Conv row")
	}
	conv := byClass["Conv"]
	// (a) quantized conv is slower than float conv on the optimized path.
	if conv.Ms["MobileQuant"] <= conv.Ms["Mobile"] {
		t.Errorf("quant conv (%.2f) should be slower than float conv (%.2f)", conv.Ms["MobileQuant"], conv.Ms["Mobile"])
	}
	// (b) quantized depthwise is faster than float depthwise.
	if dconv.Ms["MobileQuant"] >= dconv.Ms["Mobile"] {
		t.Errorf("quant dconv (%.2f) should be faster than float dconv (%.2f)", dconv.Ms["MobileQuant"], dconv.Ms["Mobile"])
	}
	// (c) the reference resolver is orders of magnitude slower.
	if dconv.Ms["MobileQuantRef"] < 50*dconv.Ms["MobileQuant"] {
		t.Errorf("reference dconv (%.2f) should dwarf optimized (%.2f)", dconv.Ms["MobileQuantRef"], dconv.Ms["MobileQuant"])
	}
	if conv.Ms["MobileQuantRef"] < 100*conv.Ms["MobileQuant"] {
		t.Errorf("reference conv (%.2f) should dwarf optimized (%.2f)", conv.Ms["MobileQuantRef"], conv.Ms["MobileQuant"])
	}
	// (d) the emulator is dramatically slower on conv but comparable on
	// depthwise (ARM-specific optimizations don't transfer).
	if byClass["Conv"].Ms["Emulator"] < 20*conv.Ms["Mobile"] {
		t.Errorf("emulator conv (%.2f) should be tens of times slower than Pixel4 (%.2f)",
			conv.Ms["Emulator"], conv.Ms["Mobile"])
	}
	if dconv.Ms["Emulator"] > 3*dconv.Ms["Mobile"] {
		t.Errorf("emulator dconv (%.2f) should be comparable to Pixel4 (%.2f)",
			dconv.Ms["Emulator"], dconv.Ms["Mobile"])
	}
}

func TestAppendixTextShape(t *testing.T) {
	rows, err := AppendixText(frames(60, 24))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.EmbeddingNRMSE < 0.05 {
			t.Errorf("%s: embeddings barely changed (%.3f)", r.Model, r.EmbeddingNRMSE)
		}
		if diff := r.AccuracyCased - r.AccuracyFolded; diff > 0.05 || diff < -0.05 {
			t.Errorf("%s: accuracy changed by %.2f despite §A expecting invariance", r.Model, diff)
		}
	}
}

func TestAppendixInGraphImmunity(t *testing.T) {
	rows, err := AppendixInGraph(frames(80, 40))
	if err != nil {
		t.Fatal(err)
	}
	stock, ing := rows[0], rows[1]
	if stock.Baseline-stock.Norm < 0.1 {
		t.Errorf("stock model should suffer from the normalization bug (%.2f -> %.2f)", stock.Baseline, stock.Norm)
	}
	if ing.Baseline != ing.Norm || ing.Baseline != ing.Resize {
		t.Error("in-graph variant must be bug-invariant by construction")
	}
	if ing.Baseline < stock.Baseline-0.1 {
		t.Errorf("in-graph variant accuracy %.2f fell below stock %.2f", ing.Baseline, stock.Baseline)
	}
}

func TestAblations(t *testing.T) {
	em, err := AblationErrorMetrics()
	if err != nil {
		t.Fatal(err)
	}
	if em[0].SpikeOp != "DepthwiseConv2D" {
		t.Errorf("normalized rMSE localised %s, want DepthwiseConv2D", em[0].SpikeOp)
	}
	pc, err := AblationPerChannel()
	if err != nil {
		t.Fatal(err)
	}
	if pc[0].Accuracy < pc[1].Accuracy-0.02 {
		t.Errorf("per-channel (%.2f) should not lose to per-tensor (%.2f)", pc[0].Accuracy, pc[1].Accuracy)
	}
	cal, err := AblationCalibration()
	if err != nil {
		t.Fatal(err)
	}
	if cal[1].Accuracy < cal[0].Accuracy-0.02 {
		t.Errorf("clipped calibration (%.2f) should not lose to strict (%.2f)", cal[1].Accuracy, cal[0].Accuracy)
	}
	cap, err := AblationCaptureMode()
	if err != nil {
		t.Fatal(err)
	}
	if cap[1].BytesPerFrame < 20*cap[0].BytesPerFrame {
		t.Errorf("full capture (%dB) should dwarf stats-only (%dB)", cap[1].BytesPerFrame, cap[0].BytesPerFrame)
	}
	if _, err := AblationSymmetric(); err != nil {
		t.Fatal(err)
	}
	lf, err := AblationLogFormat()
	if err != nil {
		t.Fatal(err)
	}
	if len(lf) != 2 || lf[0].Format.String() != "jsonl" || lf[1].Format.String() != "binary" {
		t.Fatalf("log-format rows = %+v", lf)
	}
	// The binary encoding must beat JSONL on bytes (no base64, no JSON
	// framing) while carrying the same records.
	if lf[1].BytesPerFrame >= lf[0].BytesPerFrame {
		t.Errorf("binary log (%dB/frm) not smaller than JSONL (%dB/frm)", lf[1].BytesPerFrame, lf[0].BytesPerFrame)
	}
	if lf[0].RecordsPerFrame != lf[1].RecordsPerFrame {
		t.Errorf("record counts differ across formats: %d vs %d", lf[0].RecordsPerFrame, lf[1].RecordsPerFrame)
	}
	var buf bytes.Buffer
	RenderAblationLogFormat(&buf, lf)
	if !strings.Contains(buf.String(), "binary") {
		t.Error("render missing binary row")
	}
	kb, err := AblationKernelBackend()
	if err != nil {
		t.Fatal(err)
	}
	if len(kb) != 6 {
		t.Fatalf("kernel-backend rows = %d, want 3 backends x 2 kinds", len(kb))
	}
	for _, row := range kb {
		// The seam's fidelity contract: quantized output is bit-exact on
		// every backend, float output is bit-exact for the bitwise-stable
		// backends; tiled float is only held to argmax agreement.
		if row.Kind == "int8" && !row.BitExact {
			t.Errorf("%s/int8 not bit-exact against blocked", row.Backend)
		}
		if row.Kind == "float32" && row.Backend.BitwiseStable() && !row.BitExact {
			t.Errorf("%s/float32 not bit-exact against blocked", row.Backend)
		}
		if row.Top1Agree < 1 {
			t.Errorf("%s/%s top-1 agreement %.2f, want 1.00 on benign drift", row.Backend, row.Kind, row.Top1Agree)
		}
	}
	buf.Reset()
	RenderAblationKernel(&buf, kb)
	if !strings.Contains(buf.String(), "tiled") {
		t.Error("kernel render missing tiled row")
	}
}

// TestFleetDetectionShape pins the detection binding of the fleet demo: the
// same three-device fleet shards the SSD replay, rollups populate, and only
// the bugged Pixel3 is flagged — the task-agnostic scheduler contract.
func TestFleetDetectionShape(t *testing.T) {
	n := frames(24, 12)
	rows, err := Fleet(n, "detection")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows, want 3", len(rows))
	}
	total := 0
	for _, r := range rows {
		total += r.Frames
		if r.MeanModeledMs <= 0 {
			t.Errorf("%s has no modeled-latency rollup", r.Device)
		}
		if (r.Device == "Pixel3") != r.Flagged {
			t.Errorf("%s flagged=%v; only the bugged Pixel3 should be flagged", r.Device, r.Flagged)
		}
	}
	if total != n {
		t.Errorf("device shares cover %d of %d frames", total, n)
	}
	var buf bytes.Buffer
	RenderFleet(&buf, "detection", rows)
	if !strings.Contains(buf.String(), "detection") || !strings.Contains(buf.String(), "X") {
		t.Errorf("rendered detection fleet table misses content:\n%s", buf.String())
	}
}
