package experiments

import (
	"fmt"
	"io"
	"strings"

	"mlexray/internal/core"
	"mlexray/internal/datasets"
	"mlexray/internal/graph"
	"mlexray/internal/imaging"
	"mlexray/internal/ops"
	"mlexray/internal/pipeline"
	"mlexray/internal/replay"
	"mlexray/internal/runner"
	"mlexray/internal/zoo"
)

// Figure3Cell is one (task, issue) cell of the coverage matrix: whether the
// injected issue degraded the pipeline, whether ML-EXray's validation caught
// it, and which assertion (if any) explained it.
type Figure3Cell struct {
	Task      string
	Issue     string
	Agreement float64
	Caught    bool
	Assertion string
}

// Figure3 reproduces the evaluation-summary matrix: ML-EXray applied to
// every task with every applicable issue injected, recording what the
// validation flow detects. Frames per cell are kept small; detection power
// at this scale already separates pass from fail cleanly.
func Figure3(frames int) ([]Figure3Cell, error) {
	if frames <= 0 {
		frames = 6
	}
	var cells []Figure3Cell

	// --- image tasks: classification, detection, segmentation ---
	imageBugs := []pipeline.Bug{pipeline.BugResize, pipeline.BugChannel, pipeline.BugNormalization, pipeline.BugRotation}
	type imageTask struct {
		task  string
		model string
	}
	for _, it := range []imageTask{
		{"classification", "mobilenetv2-mini"},
		{"detection", "ssd-mini"},
		{"segmentation", "deeplab-mini"},
	} {
		entry, err := zoo.Get(it.model)
		if err != nil {
			return nil, err
		}
		refLog, err := runImageTask(it.task, entry.Mobile, ops.NewReference(ops.Fixed()), pipeline.BugNone, frames, false)
		if err != nil {
			return nil, err
		}
		for _, bug := range imageBugs {
			edgeLog, err := runImageTask(it.task, entry.Mobile, fixedOptimized(), bug, frames, false)
			if err != nil {
				return nil, err
			}
			cells = append(cells, validateCell(it.task, string(bug), edgeLog, refLog))
		}
		// Quantization issue: the historical kernel build on the quantized
		// model, with per-layer capture for localisation.
		refPL, err := runImageTask(it.task, entry.Mobile, ops.NewReference(ops.Fixed()), pipeline.BugNone, frames, true)
		if err != nil {
			return nil, err
		}
		edgePL, err := runImageTask(it.task, entry.Quant, ops.NewOptimized(ops.Historical()), pipeline.BugNone, frames, true)
		if err != nil {
			return nil, err
		}
		cells = append(cells, validateCell(it.task, "quantization", edgePL, refPL))
	}

	// --- speech ---
	kws, err := zoo.Get("kws-mini-a")
	if err != nil {
		return nil, err
	}
	refLog, err := runSpeech(kws.Mobile, ops.NewReference(ops.Fixed()), pipeline.BugNone, frames)
	if err != nil {
		return nil, err
	}
	edgeLog, err := runSpeech(kws.Mobile, fixedOptimized(), pipeline.BugSpecNorm, frames)
	if err != nil {
		return nil, err
	}
	cells = append(cells, validateCell("speech", "specnorm", edgeLog, refLog))

	// --- text (the §A case: outputs agree even though embeddings differ) ---
	nnlm, err := zoo.Get("nnlm-mini")
	if err != nil {
		return nil, err
	}
	refLog, err = runText(nnlm.Mobile, pipeline.BugNone, frames)
	if err != nil {
		return nil, err
	}
	edgeLog, err = runText(nnlm.Mobile, pipeline.BugLowercase, frames)
	if err != nil {
		return nil, err
	}
	cells = append(cells, validateCell("text", "lowercase", edgeLog, refLog))

	// --- latency straggler: the §4.5(d) scenario — the float model on the
	// x86 emulator, where the ARM conv optimizations don't transfer and
	// convolution layers become order-of-magnitude outliers.
	entry, err := zoo.Get("mobilenetv2-mini")
	if err != nil {
		return nil, err
	}
	stragglerLog, err := runImageTaskOnDevice(entry.Mobile, fixedOptimized(), 2)
	if err != nil {
		return nil, err
	}
	// The reference run: the same pipeline on the target's native profile.
	refDevLog, err := runImageTaskOnProfile(entry.Mobile, fixedOptimized(), "Pixel4", 2)
	if err != nil {
		return nil, err
	}
	rep, err := core.Validate(stragglerLog, refDevLog, core.DefaultValidateOptions())
	if err != nil {
		return nil, err
	}
	cell := Figure3Cell{Task: "classification", Issue: "latency", Agreement: 1}
	for _, f := range rep.Findings {
		if f.Assertion == "straggler-latency" {
			cell.Caught = true
			cell.Assertion = f.Assertion
		}
	}
	cells = append(cells, cell)
	return cells, nil
}

func validateCell(task, issue string, edge, ref *core.Log) Figure3Cell {
	cell := Figure3Cell{Task: task, Issue: issue}
	rep, err := core.Validate(edge, ref, core.DefaultValidateOptions())
	if err != nil {
		return cell
	}
	cell.Agreement = rep.OutputAgreement
	if rep.OutputAgreement < 0.98 {
		cell.Caught = true
	}
	var names []string
	for _, f := range rep.Findings {
		names = append(names, f.Assertion)
	}
	if len(names) > 0 {
		cell.Caught = true
		cell.Assertion = strings.Join(names, ",")
	}
	return cell
}

func runImageTask(task string, m *graph.Model, resolver *ops.Resolver, bug pipeline.Bug, frames int, perLayer bool) (*core.Log, error) {
	monOpts := []core.MonitorOption{core.WithCaptureMode(core.CaptureFull), core.WithPerLayer(perLayer)}
	opts := pipeline.Options{Resolver: resolver, Bug: bug}
	switch task {
	case "classification":
		// Classification rides the batched inference path (ReplayBatch
		// frames per interpreter invoke); the merged log is byte-identical
		// to the frame-at-a-time replay.
		samples := datasets.SynthImageNet(5555, frames)
		return replay.Classification(m, opts, classificationImages(samples), sweepOptions(monOpts), nil)
	case "detection":
		// Detection rides the batched inference path too: the two-output
		// head decodes per element through interp.Batch.OutputAt.
		samples := datasets.SynthCOCO(6666, frames)
		images := make([]*imaging.Image, len(samples))
		for i := range samples {
			images[i] = samples[i].Image
		}
		return replay.Detection(m, opts, images, sweepOptions(monOpts), nil)
	case "segmentation":
		base, err := pipeline.NewSegmenter(m, opts)
		if err != nil {
			return nil, err
		}
		samples := datasets.SynthSegmentation(8888, frames)
		return replayLog(len(samples), monOpts, func(mon *core.Monitor) (runner.ProcessFunc, error) {
			sg, err := base.Clone(mon)
			if err != nil {
				return nil, err
			}
			return func(i int) error {
				_, err := sg.Segment(samples[i].Image)
				return err
			}, nil
		})
	}
	return nil, fmt.Errorf("experiments: unknown image task %q", task)
}

func runSpeech(m *graph.Model, resolver *ops.Resolver, bug pipeline.Bug, frames int) (*core.Log, error) {
	base, err := pipeline.NewSpeechRecognizer(m, pipeline.Options{Resolver: resolver, Bug: bug})
	if err != nil {
		return nil, err
	}
	samples := datasets.SynthSpeech(7777, frames)
	return replayLog(len(samples), []core.MonitorOption{core.WithCaptureMode(core.CaptureFull)},
		func(mon *core.Monitor) (runner.ProcessFunc, error) {
			sr, err := base.Clone(mon)
			if err != nil {
				return nil, err
			}
			return func(i int) error {
				_, _, err := sr.Recognize(samples[i].Wave)
				return err
			}, nil
		})
}

func runText(m *graph.Model, bug pipeline.Bug, frames int) (*core.Log, error) {
	base, err := pipeline.NewTextClassifier(m, datasets.TokenizeText,
		pipeline.Options{Resolver: fixedOptimized(), Bug: bug})
	if err != nil {
		return nil, err
	}
	samples := datasets.SynthIMDB(9999, frames)
	return replayLog(len(samples), []core.MonitorOption{core.WithCaptureMode(core.CaptureFull)},
		func(mon *core.Monitor) (runner.ProcessFunc, error) {
			tc, err := base.Clone(mon)
			if err != nil {
				return nil, err
			}
			return func(i int) error {
				_, _, err := tc.ClassifyText(samples[i].Text)
				return err
			}, nil
		})
}

// runImageTaskOnDevice runs with the emulator latency model attached so the
// straggler analysis has per-layer latency records.
func runImageTaskOnDevice(m *graph.Model, resolver *ops.Resolver, frames int) (*core.Log, error) {
	return runImageTaskOnProfile(m, resolver, "Emulator-x86", frames)
}

func runImageTaskOnProfile(m *graph.Model, resolver *ops.Resolver, profile string, frames int) (*core.Log, error) {
	dev, err := deviceByName(profile)
	if err != nil {
		return nil, err
	}
	samples := datasets.SynthImageNet(5555, frames)
	monOpts := []core.MonitorOption{core.WithCaptureMode(core.CaptureStats), core.WithPerLayer(true)}
	return replay.Classification(m, pipeline.Options{Resolver: resolver, Device: dev},
		classificationImages(samples), sweepOptions(monOpts), nil)
}

// RenderFigure3 prints the coverage matrix.
func RenderFigure3(w io.Writer, cells []Figure3Cell) {
	fprintf(w, "Figure 3 — task x issue coverage: what ML-EXray catches\n")
	fprintf(w, "%-16s %-14s %10s %7s  %s\n", "task", "issue", "agreement", "caught", "assertion")
	for _, c := range cells {
		mark := " "
		if c.Caught {
			mark = "X"
		}
		fprintf(w, "%-16s %-14s %10.2f %7s  %s\n", c.Task, c.Issue, c.Agreement, mark, c.Assertion)
	}
}
