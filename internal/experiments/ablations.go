package experiments

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"time"

	"mlexray/internal/convert"
	"mlexray/internal/core"
	"mlexray/internal/datasets"
	"mlexray/internal/interp"
	"mlexray/internal/ops"
	"mlexray/internal/pipeline"
	"mlexray/internal/replay"
	"mlexray/internal/tensor"
	"mlexray/internal/zoo"
)

// ---- Ablation: drift metric choice (DESIGN.md §4.1) ----

// AblationErrorMetricsRow reports, for one metric, which layer the
// first-spike localisation lands on.
type AblationErrorMetricsRow struct {
	Metric     string
	SpikeLayer string
	SpikeOp    string
}

// AblationErrorMetrics compares normalized rMSE against raw rMSE and
// max-abs error as the per-layer drift metric on the v2 depthwise-defect
// case. Normalized rMSE localises the defective op; unnormalized metrics
// are biased toward layers with large value ranges.
func AblationErrorMetrics() ([]AblationErrorMetricsRow, error) {
	e, err := zoo.Get("mobilenetv2-mini")
	if err != nil {
		return nil, err
	}
	refLog, err := perLayerLog(e.Mobile, ops.NewReference(ops.Fixed()), 3)
	if err != nil {
		return nil, err
	}
	edgeLog, err := perLayerLog(e.Quant, ops.NewOptimized(ops.Historical()), 3)
	if err != nil {
		return nil, err
	}
	diffs, err := core.CompareLayers(edgeLog, refLog)
	if err != nil {
		return nil, err
	}
	spikeBy := func(value func(core.LayerDiff) float64, threshold float64) (string, string) {
		prev := 0.0
		for _, d := range diffs {
			v := value(d)
			if v >= threshold && (prev <= 0 || v >= 3*prev) {
				return d.Name, d.OpType
			}
			prev = v
		}
		return "(none)", ""
	}
	var rows []AblationErrorMetricsRow
	l, op := spikeBy(func(d core.LayerDiff) float64 { return d.NRMSE }, 0.1)
	rows = append(rows, AblationErrorMetricsRow{"normalized rMSE", l, op})
	l, op = spikeBy(func(d core.LayerDiff) float64 { return d.RMSE }, 0.1)
	rows = append(rows, AblationErrorMetricsRow{"raw rMSE", l, op})
	l, op = spikeBy(func(d core.LayerDiff) float64 { return d.MaxAbs }, 0.5)
	rows = append(rows, AblationErrorMetricsRow{"max abs error", l, op})
	return rows, nil
}

// RenderAblationErrorMetrics prints the metric ablation.
func RenderAblationErrorMetrics(w io.Writer, rows []AblationErrorMetricsRow) {
	fprintf(w, "Ablation — drift metric vs localisation (v2 quant, optimized resolver)\n")
	for _, r := range rows {
		fprintf(w, "  %-16s -> %s (%s)\n", r.Metric, r.SpikeLayer, r.SpikeOp)
	}
}

// ---- Ablation: per-channel vs per-tensor weight quantization (§2) ----

// AblationQuantRow is one quantization-option accuracy.
type AblationQuantRow struct {
	Option   string
	Accuracy float64
}

// AblationPerChannel quantizes MobileNet-v2 with per-channel versus
// per-tensor weight scales (fixed kernels, so quantization resolution is
// the only variable).
func AblationPerChannel() ([]AblationQuantRow, error) {
	e, err := zoo.Get("mobilenetv2-mini")
	if err != nil {
		return nil, err
	}
	calib := calibSet(e)
	var rows []AblationQuantRow
	for _, perChannel := range []bool{true, false} {
		opts := convert.DefaultQuantOptions()
		opts.WeightPerChannel = perChannel
		q, err := convert.Quantize(e.Mobile, calib, opts)
		if err != nil {
			return nil, err
		}
		acc, err := evalClassifierAccuracy(q, pipeline.Options{Resolver: ops.NewOptimized(ops.Fixed())}, EvalFrames)
		if err != nil {
			return nil, err
		}
		name := "per-tensor weights"
		if perChannel {
			name = "per-channel weights"
		}
		rows = append(rows, AblationQuantRow{name, acc})
	}
	return rows, nil
}

// AblationCalibration quantizes with a corrupted representative dataset
// (one sensor-glitch sample) under strict min/max versus percentile-clipped
// calibration (§2's scale-calibration pitfall).
func AblationCalibration() ([]AblationQuantRow, error) {
	e, err := zoo.Get("mobilenetv2-mini")
	if err != nil {
		return nil, err
	}
	calib := calibSet(e)
	// Corrupt one calibration sample with a glitch pixel.
	bad := calib[0].Clone()
	bad.F[0] = 80
	calib = append(calib, bad)
	var rows []AblationQuantRow
	for _, clip := range []float64{0, 0.001} {
		opts := convert.DefaultQuantOptions()
		opts.ActClipPercentile = clip
		q, err := convert.Quantize(e.Mobile, calib, opts)
		if err != nil {
			return nil, err
		}
		acc, err := evalClassifierAccuracy(q, pipeline.Options{Resolver: ops.NewOptimized(ops.Fixed())}, EvalFrames)
		if err != nil {
			return nil, err
		}
		name := "strict min/max"
		if clip > 0 {
			name = "0.1% percentile clip"
		}
		rows = append(rows, AblationQuantRow{name, acc})
	}
	return rows, nil
}

// AblationSymmetric compares asymmetric against symmetric activation
// quantization (§2: symmetric wastes range on skewed post-ReLU data).
func AblationSymmetric() ([]AblationQuantRow, error) {
	e, err := zoo.Get("mobilenetv2-mini")
	if err != nil {
		return nil, err
	}
	calib := calibSet(e)
	var rows []AblationQuantRow
	for _, sym := range []bool{false, true} {
		opts := convert.DefaultQuantOptions()
		opts.ActSymmetric = sym
		q, err := convert.Quantize(e.Mobile, calib, opts)
		if err != nil {
			return nil, err
		}
		acc, err := evalClassifierAccuracy(q, pipeline.Options{Resolver: ops.NewOptimized(ops.Fixed())}, EvalFrames)
		if err != nil {
			return nil, err
		}
		name := "asymmetric activations"
		if sym {
			name = "symmetric activations"
		}
		rows = append(rows, AblationQuantRow{name, acc})
	}
	return rows, nil
}

func calibSet(e *zoo.Entry) []*tensor.Tensor {
	pp, err := pipeline.CorrectImagePreproc(e.Mobile.Meta)
	if err != nil {
		return nil
	}
	var out []*tensor.Tensor
	for _, s := range datasets.SynthImageNet(901, 10) {
		out = append(out, pipeline.PreprocessImage(s.Image, e.Mobile.Meta, pp))
	}
	return out
}

// RenderAblationQuant prints a quantization-option ablation.
func RenderAblationQuant(w io.Writer, caption string, rows []AblationQuantRow) {
	fprintf(w, "%s\n", caption)
	for _, r := range rows {
		fprintf(w, "  %-24s accuracy = %.2f\n", r.Option, r.Accuracy)
	}
}

// ---- Ablation: capture mode logging cost (DESIGN.md §4.2) ----

// AblationCaptureRow reports log bytes per frame for one capture mode.
type AblationCaptureRow struct {
	Mode          string
	BytesPerFrame int
}

// AblationCaptureMode measures the stats-only versus full-tensor log cost
// that separates Table 2's 0.41 KB/frame from Table 3's hundreds of MB.
func AblationCaptureMode() ([]AblationCaptureRow, error) {
	e, err := zoo.Get("mobilenetv2-mini")
	if err != nil {
		return nil, err
	}
	var rows []AblationCaptureRow
	for _, mode := range []core.CaptureMode{core.CaptureStats, core.CaptureFull} {
		mon := core.NewMonitor(core.WithCaptureMode(mode), core.WithPerLayer(true))
		cl, err := pipeline.NewClassifier(e.Mobile, pipeline.Options{Resolver: fixedOptimized(), Monitor: mon})
		if err != nil {
			return nil, err
		}
		const frames = 5
		for _, s := range datasets.SynthImageNet(5555, frames) {
			if _, _, err := cl.Classify(s.Image); err != nil {
				return nil, err
			}
		}
		n, err := mon.Log().SizeBytes()
		if err != nil {
			return nil, err
		}
		name := "stats-only"
		if mode == core.CaptureFull {
			name = "full tensors"
		}
		rows = append(rows, AblationCaptureRow{name, n / frames})
	}
	return rows, nil
}

// RenderAblationCapture prints the capture-mode ablation.
func RenderAblationCapture(w io.Writer, rows []AblationCaptureRow) {
	fprintf(w, "Ablation — per-layer log cost by capture mode (per frame)\n")
	for _, r := range rows {
		fprintf(w, "  %-14s %d bytes\n", r.Mode, r.BytesPerFrame)
	}
}

// ---- Ablation: telemetry log encoding ----

// AblationLogFormatRow reports one codec's cost on a full-capture per-layer
// log: serialized bytes per frame and encode nanoseconds per frame.
type AblationLogFormatRow struct {
	Format          core.LogFormat
	BytesPerFrame   int
	EncodeNsPerFrm  float64
	RecordsPerFrame int
}

// AblationLogFormat measures the JSONL versus binary encoding cost of
// full-tensor per-layer telemetry — the datapoint behind the codec redesign:
// the binary format drops the base64 expansion and the per-byte JSON
// escaping, so full-capture streaming pays a fraction of the JSONL cost. The
// log round-trips through each codec's streaming sink (read back with the
// auto-detecting reader) so the measured path is the one replays use.
func AblationLogFormat() ([]AblationLogFormatRow, error) {
	e, err := zoo.Get("mobilenetv2-mini")
	if err != nil {
		return nil, err
	}
	const frames = 4
	samples := datasets.SynthImageNet(5555, frames)
	mergedLog, err := replay.Classification(e.Mobile,
		pipeline.Options{Resolver: fixedOptimized()},
		classificationImages(samples),
		sweepOptions([]core.MonitorOption{core.WithCaptureMode(core.CaptureFull), core.WithPerLayer(true)}),
		nil)
	if err != nil {
		return nil, err
	}
	var rows []AblationLogFormatRow
	for _, format := range []core.LogFormat{core.FormatJSONL, core.FormatBinary} {
		var buf bytes.Buffer
		sink, err := core.NewLogSink(&buf, format)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		for f := 1; f <= frames; f++ {
			if err := sink.WriteFrame(f, mergedLog.ByFrame(f)); err != nil {
				return nil, err
			}
		}
		if err := sink.Flush(); err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		back, err := core.ReadLog(&buf)
		if err != nil {
			return nil, err
		}
		if len(back.Records) != len(mergedLog.Records) {
			return nil, fmt.Errorf("experiments: %v round trip lost records (%d vs %d)",
				format, len(back.Records), len(mergedLog.Records))
		}
		rows = append(rows, AblationLogFormatRow{
			Format:          format,
			BytesPerFrame:   sink.Bytes() / frames,
			EncodeNsPerFrm:  float64(elapsed.Nanoseconds()) / frames,
			RecordsPerFrame: sink.Records() / frames,
		})
	}
	return rows, nil
}

// RenderAblationLogFormat prints the log-encoding ablation.
func RenderAblationLogFormat(w io.Writer, rows []AblationLogFormatRow) {
	fprintf(w, "Ablation — full-capture log encoding (per frame)\n")
	fprintf(w, "  %-8s %12s %14s %10s\n", "format", "bytes/frm", "encode ns/frm", "records")
	for _, r := range rows {
		fprintf(w, "  %-8s %12d %14.0f %10d\n", r.Format, r.BytesPerFrame, r.EncodeNsPerFrm, r.RecordsPerFrame)
	}
}

// ---- Ablation: kernel micro-kernel backend (DESIGN.md §10) ----

// AblationKernelRow reports one (backend, compute kind) cell of the
// kernel-backend ablation: invoke wall-clock per frame plus fidelity against
// the blocked baseline on the same frames.
type AblationKernelRow struct {
	Backend ops.Backend
	Kind    string
	// NsPerFrm is the interpreter invoke cost (preprocessing excluded — the
	// inputs are pre-tensorized so the column isolates the kernels).
	NsPerFrm float64
	// Top1Agree is the fraction of frames whose argmax matches the blocked
	// backend's.
	Top1Agree float64
	// BitExact reports whether every output tensor is bitwise identical to
	// the blocked backend's. Expected true everywhere except possibly
	// float32/tiled, whose summation order is only validator-bounded (see
	// ops.Backend.BitwiseStable).
	BitExact bool
}

// AblationKernelBackend sweeps the kernel backends over the float and
// quantized mobilenetv2-mini, measuring per-frame invoke cost and output
// fidelity versus the blocked default. It is the table behind the backend
// seam's contract: quantized outputs are bit-exact on every backend, float
// outputs are bit-exact for the bitwise-stable backends and validator-bounded
// for tiled.
func AblationKernelBackend() ([]AblationKernelRow, error) {
	e, err := zoo.Get("mobilenetv2-mini")
	if err != nil {
		return nil, err
	}
	const frames = 6
	samples := datasets.SynthImageNet(5555, frames)
	var rows []AblationKernelRow
	for _, kind := range []string{"float32", "int8"} {
		m := e.Mobile
		if kind == "int8" {
			m = e.Quant
		}
		pp, err := pipeline.CorrectImagePreproc(m.Meta)
		if err != nil {
			return nil, err
		}
		inputs := make([]*tensor.Tensor, frames)
		for i, s := range samples {
			inputs[i] = pipeline.PreprocessImage(s.Image, m.Meta, pp)
		}
		outs := map[ops.Backend][]*tensor.Tensor{}
		ns := map[ops.Backend]float64{}
		for _, b := range ops.Backends() {
			ip, err := interp.New(m, fixedOptimized(), interp.WithBackend(b))
			if err != nil {
				return nil, err
			}
			got := make([]*tensor.Tensor, frames)
			start := time.Now()
			for i, in := range inputs {
				out, err := ip.Run(in)
				if err != nil {
					return nil, err
				}
				got[i] = out.Clone()
			}
			ns[b] = float64(time.Since(start).Nanoseconds()) / frames
			outs[b] = got
		}
		base := outs[ops.BackendBlocked]
		for _, b := range ops.Backends() {
			agree, exact := 0, true
			for i, out := range outs[b] {
				if out.ArgMax() == base[i].ArgMax() {
					agree++
				}
				if !tensorBitsEqual(out, base[i]) {
					exact = false
				}
			}
			rows = append(rows, AblationKernelRow{
				Backend:   b,
				Kind:      kind,
				NsPerFrm:  ns[b],
				Top1Agree: float64(agree) / frames,
				BitExact:  exact,
			})
		}
	}
	return rows, nil
}

// tensorBitsEqual reports bitwise equality of two same-dtype tensors.
func tensorBitsEqual(a, b *tensor.Tensor) bool {
	if a.DType != b.DType || a.Len() != b.Len() {
		return false
	}
	switch a.DType {
	case tensor.F32:
		for i, v := range a.F {
			if math.Float32bits(v) != math.Float32bits(b.F[i]) {
				return false
			}
		}
	case tensor.U8:
		return bytes.Equal(a.U, b.U)
	case tensor.I8:
		for i, v := range a.I {
			if v != b.I[i] {
				return false
			}
		}
	case tensor.I32:
		for i, v := range a.X {
			if v != b.X[i] {
				return false
			}
		}
	}
	return true
}

// RenderAblationKernel prints the kernel-backend ablation.
func RenderAblationKernel(w io.Writer, rows []AblationKernelRow) {
	fprintf(w, "Ablation — kernel backend (mobilenetv2-mini, invoke only)\n")
	fprintf(w, "  %-8s %-10s %12s %10s %9s\n", "kind", "backend", "ns/frm", "top1agree", "bitexact")
	for _, r := range rows {
		fprintf(w, "  %-8s %-10s %12.0f %10.2f %9v\n", r.Kind, r.Backend, r.NsPerFrm, r.Top1Agree, r.BitExact)
	}
}
