package experiments

import (
	"io"
	"strings"
)

// Table1Row is one debugging target's line-of-code comparison: the code a
// developer writes with the ML-EXray APIs versus the manual equivalent
// (hand-rolled logging, log parsing and comparison).
type Table1Row struct {
	Target        string
	WithInst      int
	WithAssert    int
	WithoutInst   int
	WithoutAssert int
}

// countLoC counts non-blank, non-comment lines — how the paper counts.
func countLoC(src string) int {
	n := 0
	for _, line := range strings.Split(src, "\n") {
		t := strings.TrimSpace(line)
		if t == "" || strings.HasPrefix(t, "//") {
			continue
		}
		n++
	}
	return n
}

// The "with ML-EXray" snippets are the instrumentation and assertion code
// the examples in examples/ actually use; the "without" snippets are the
// manual equivalents a developer writes when no framework exists (capture,
// serialize, parse, align, diff). Both are real Go against this repository's
// types — the counts are measured from the code below, not asserted.

const withPreprocInst = `
mon.LogTensorFull(core.KeyPreprocessOutput, input)
`

const withPreprocAssert = `
rep, _ := core.Validate(edgeLog, refLog, core.DefaultValidateOptions())
for _, f := range rep.Findings {
	fmt.Println(f.Assertion, f.Detail)
}
`

const withoutPreprocInst = `
f, err := os.Create("edge_preproc.bin")
if err != nil {
	log.Fatal(err)
}
defer f.Close()
if err := binary.Write(f, binary.LittleEndian, int32(len(input.Shape))); err != nil {
	log.Fatal(err)
}
for _, d := range input.Shape {
	if err := binary.Write(f, binary.LittleEndian, int32(d)); err != nil {
		log.Fatal(err)
	}
}
if err := binary.Write(f, binary.LittleEndian, input.F); err != nil {
	log.Fatal(err)
}
`

const withoutPreprocAssert = `
edge := readTensor("edge_preproc.bin")
ref := readTensor("ref_preproc.bin")
swapped := swapChannels(edge)
if !allClose(edge, ref) && allClose(swapped, ref) {
	fmt.Println("BGR->RGB mismatch")
}
`

const withQuantInst = `
mon := core.NewMonitor(core.WithCaptureMode(core.CaptureFull), core.WithPerLayer(true))
cl, err := pipeline.NewClassifier(model, pipeline.Options{Resolver: r, Monitor: mon})
run(cl)
mon.Log().WriteJSONL(out)
`

const withQuantAssert = `
diffs, err := core.CompareLayers(edgeLog, refLog)
if err != nil {
	log.Fatal(err)
}
if spike, ok := core.FirstSpike(diffs, 0.1, 3); ok {
	fmt.Printf("suspect %s kernel at layer %d (%s)\n", spike.OpType, spike.Index, spike.Name)
}
for _, d := range diffs {
	fmt.Printf("%d %s %.4f\n", d.Index, d.Name, d.NRMSE)
}
`

const withoutQuantInst = `
type layerDump struct {
	Index int
	Name  string
	Op    string
	Shape []int
	Data  []float32
}
var dumps []layerDump
hook := func(ev interp.NodeEvent) {
	out := ev.Outputs[0]
	vals := make([]float32, out.Len())
	if out.DType == tensor.U8 {
		q := ev.OutQuant[0]
		for i, v := range out.U {
			vals[i] = float32(q.DequantizeU8(v, 0))
		}
	} else {
		copy(vals, out.F)
	}
	dumps = append(dumps, layerDump{ev.Index, ev.Node.Name, ev.Node.Op.String(), out.Shape, vals})
}
ip, err := interp.New(model, resolver, interp.WithHook(hook))
if err != nil {
	log.Fatal(err)
}
for _, im := range images {
	in := preprocess(im)
	if err := ip.SetInput(0, in); err != nil {
		log.Fatal(err)
	}
	if err := ip.Invoke(); err != nil {
		log.Fatal(err)
	}
}
f, err := os.Create("layers.json")
if err != nil {
	log.Fatal(err)
}
enc := json.NewEncoder(f)
for _, d := range dumps {
	if err := enc.Encode(d); err != nil {
		log.Fatal(err)
	}
}
f.Close()
`

const withoutQuantAssert = `
readDumps := func(path string) map[string][]layerDump {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	out := map[string][]layerDump{}
	dec := json.NewDecoder(f)
	for {
		var d layerDump
		if err := dec.Decode(&d); err == io.EOF {
			break
		} else if err != nil {
			log.Fatal(err)
		}
		out[d.Name] = append(out[d.Name], d)
	}
	return out
}
edge := readDumps("edge_layers.json")
ref := readDumps("ref_layers.json")
type diff struct {
	index int
	name  string
	op    string
	nrmse float64
}
var diffs []diff
for name, eds := range edge {
	rds, ok := ref[name]
	if !ok || len(rds) != len(eds) {
		continue
	}
	var sum float64
	for i := range eds {
		if len(eds[i].Data) != len(rds[i].Data) {
			continue
		}
		var sq, mn, mx float64
		mn, mx = math.Inf(1), math.Inf(-1)
		for j := range eds[i].Data {
			d := float64(eds[i].Data[j] - rds[i].Data[j])
			sq += d * d
			v := float64(rds[i].Data[j])
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		rmse := math.Sqrt(sq / float64(len(eds[i].Data)))
		if mx > mn {
			rmse /= mx - mn
		}
		sum += rmse
	}
	diffs = append(diffs, diff{eds[0].Index, name, eds[0].Op, sum / float64(len(eds))})
}
sort.Slice(diffs, func(i, j int) bool { return diffs[i].index < diffs[j].index })
prev := 0.0
for _, d := range diffs {
	if d.nrmse > 0.1 && (prev == 0 || d.nrmse > 3*prev) {
		fmt.Printf("suspect %s at %d (%s)\n", d.op, d.index, d.name)
		break
	}
	prev = d.nrmse
}
`

const withLatencyInst = `
mon := core.NewMonitor()
cl, err := pipeline.NewClassifier(model, pipeline.Options{Device: dev, Monitor: mon})
run(cl)
mon.Log().WriteJSONL(out)
`

const withLatencyAssert = `
a := core.LatencyBudgetAssertion{BudgetNs: 33e6}
if f := a.Check(&core.AssertCtx{Edge: edgeLog, Ref: refLog}); f != nil {
	fmt.Println(f.Detail)
}
mem := interpArena + weights
fmt.Println("memory:", mem)
`

const withoutLatencyInst = `
var lats []time.Duration
for _, im := range images {
	in := preprocess(im)
	start := time.Now()
	if err := ip.SetInput(0, in); err != nil {
		log.Fatal(err)
	}
	if err := ip.Invoke(); err != nil {
		log.Fatal(err)
	}
	lats = append(lats, time.Since(start))
}
f, _ := os.Create("lat.csv")
for _, l := range lats {
	fmt.Fprintln(f, l.Nanoseconds())
}
f.Close()
`

const withoutLatencyAssert = `
var sum time.Duration
for _, l := range lats {
	sum += l
}
mean := sum / time.Duration(len(lats))
if mean > 33*time.Millisecond {
	fmt.Println("over budget:", mean)
}
fmt.Println("memory:", arena+weights)
`

const withPerLayerLatInst = `
mon := core.NewMonitor(core.WithPerLayer(true))
cl, err := pipeline.NewClassifier(model, pipeline.Options{Device: dev, Monitor: mon})
`

const withPerLayerLatAssert = `
for _, name := range core.Stragglers(mon.Log(), 8) {
	fmt.Println("straggler:", name)
}
agg := core.LatencyByClass(mon.Log(), classOf)
for _, a := range agg {
	fmt.Printf("%s %d %.2fms\n", a.Class, a.Count, a.TotalNs/1e6)
}
`

const withoutPerLayerLatInst = `
type layerLat struct {
	name string
	op   string
	ns   []float64
}
lats := map[string]*layerLat{}
hook := func(ev interp.NodeEvent) {
	ll, ok := lats[ev.Node.Name]
	if !ok {
		ll = &layerLat{name: ev.Node.Name, op: ev.Node.Op.String()}
		lats[ev.Node.Name] = ll
	}
	ll.ns = append(ll.ns, float64(ev.Measured.Nanoseconds()))
}
ip, err := interp.New(model, resolver, interp.WithHook(hook))
if err != nil {
	log.Fatal(err)
}
`

const withoutPerLayerLatAssert = `
var means []float64
byName := map[string]float64{}
for name, ll := range lats {
	var s float64
	for _, v := range ll.ns {
		s += v
	}
	m := s / float64(len(ll.ns))
	byName[name] = m
	means = append(means, m)
}
sort.Float64s(means)
median := means[len(means)/2]
for name, m := range byName {
	if m > 8*median {
		fmt.Println("straggler:", name)
	}
}
byClass := map[string]float64{}
for _, ll := range lats {
	var s float64
	for _, v := range ll.ns {
		s += v
	}
	byClass[classOf(ll.op)] += s
}
for c, ns := range byClass {
	fmt.Printf("%s %.2fms\n", c, ns/1e6)
}
`

// Table1 measures the snippets above.
func Table1() []Table1Row {
	return []Table1Row{
		{"Preprocessing", countLoC(withPreprocInst), countLoC(withPreprocAssert),
			countLoC(withoutPreprocInst), countLoC(withoutPreprocAssert)},
		{"Quantization", countLoC(withQuantInst), countLoC(withQuantAssert),
			countLoC(withoutQuantInst), countLoC(withoutQuantAssert)},
		{"Lat. & Mem.", countLoC(withLatencyInst), countLoC(withLatencyAssert),
			countLoC(withoutLatencyInst), countLoC(withoutLatencyAssert)},
		{"Per-layer Lat.", countLoC(withPerLayerLatInst), countLoC(withPerLayerLatAssert),
			countLoC(withoutPerLayerLatInst), countLoC(withoutPerLayerLatAssert)},
	}
}

// RenderTable1 prints the LoC comparison.
func RenderTable1(w io.Writer, rows []Table1Row) {
	fprintf(w, "Table 1 — lines of code with vs without ML-EXray\n")
	fprintf(w, "%-16s | %5s %5s %6s | %5s %5s %6s\n", "target", "inst", "asrt", "total", "inst", "asrt", "total")
	fprintf(w, "%-16s | %18s | %18s\n", "", "with ML-EXray", "without")
	for _, r := range rows {
		fprintf(w, "%-16s | %5d %5d %6d | %5d %5d %6d\n", r.Target,
			r.WithInst, r.WithAssert, r.WithInst+r.WithAssert,
			r.WithoutInst, r.WithoutAssert, r.WithoutInst+r.WithoutAssert)
	}
}
