package experiments

import (
	"io"

	"mlexray/internal/datasets"
	"mlexray/internal/graph"
	"mlexray/internal/imaging"
	"mlexray/internal/interp"
	"mlexray/internal/metrics"
	"mlexray/internal/models"
	"mlexray/internal/pipeline"
	"mlexray/internal/tensor"
	"mlexray/internal/zoo"
)

// ---- §A text invariance: embeddings diverge, accuracy does not ----

// AppendixTextRow is one text model's case-folding result: the per-example
// embedding drift between cased and lowercased inputs, versus accuracy under
// both.
type AppendixTextRow struct {
	Model          string
	EmbeddingNRMSE float64
	AccuracyCased  float64
	AccuracyFolded float64
}

// AppendixText reproduces the appendix observation: lowercasing the input
// changes the NNLM embeddings drastically, yet sentiment accuracy is
// unchanged — per-layer drift does not always imply task damage, which is
// why the validator checks accuracy first (Fig. 2).
func AppendixText(n int) ([]AppendixTextRow, error) {
	if n <= 0 {
		n = 80
	}
	samples := datasets.SynthIMDB(5557, n)
	var rows []AppendixTextRow
	for _, name := range []string{"nnlm-mini", "mobilebert-mini"} {
		e, err := zoo.Get(name)
		if err != nil {
			return nil, err
		}
		embID, err := e.Mobile.TensorByName("embeddings")
		if err != nil {
			return nil, err
		}
		run := func(bug pipeline.Bug) (float64, float64, error) {
			tc, err := pipeline.NewTextClassifier(e.Mobile, datasets.TokenizeText,
				pipeline.Options{Resolver: fixedOptimized(), Bug: bug})
			if err != nil {
				return 0, 0, err
			}
			hit := 0
			for _, s := range samples {
				p, _, err := tc.ClassifyText(s.Text)
				if err != nil {
					return 0, 0, err
				}
				if p == s.Label {
					hit++
				}
			}
			return float64(hit) / float64(len(samples)), 0, nil
		}
		accCased, _, err := run(pipeline.BugNone)
		if err != nil {
			return nil, err
		}
		accFolded, _, err := run(pipeline.BugLowercase)
		if err != nil {
			return nil, err
		}
		// Embedding drift measured directly on the interpreter.
		ip, err := interp.New(e.Mobile, fixedOptimized())
		if err != nil {
			return nil, err
		}
		var driftSum float64
		for _, s := range samples[:20] {
			cased := runEmbedding(ip, datasets.TokenizeText(s.Text), embID)
			folded := runEmbedding(ip, datasets.TokenizeText(datasets.LowercaseText(s.Text)), embID)
			d, err := tensor.NormalizedRMSE(folded, cased)
			if err != nil {
				return nil, err
			}
			driftSum += d
		}
		rows = append(rows, AppendixTextRow{
			Model:          name,
			EmbeddingNRMSE: driftSum / 20,
			AccuracyCased:  accCased,
			AccuracyFolded: accFolded,
		})
	}
	return rows, nil
}

func runEmbedding(ip *interp.Interpreter, ids []int32, embID int) *tensor.Tensor {
	in := tensor.FromInt32(ids, 1, len(ids))
	if _, err := ip.Run(in); err != nil {
		return tensor.New(tensor.F32, 1)
	}
	t, err := ip.Tensor(embID)
	if err != nil {
		return tensor.New(tensor.F32, 1)
	}
	return t.Clone()
}

// RenderAppendixText prints the case-folding study.
func RenderAppendixText(w io.Writer, rows []AppendixTextRow) {
	fprintf(w, "Appendix A — case folding: embedding drift vs task accuracy\n")
	fprintf(w, "%-18s %16s %10s %10s\n", "model", "embedding nRMSE", "cased", "folded")
	for _, r := range rows {
		fprintf(w, "%-18s %16.3f %10.2f %10.2f\n", r.Model, r.EmbeddingNRMSE, r.AccuracyCased, r.AccuracyFolded)
	}
}

// ---- §A in-graph preprocessing (the EfficientDet pattern) ----

// AppendixInGraphRow compares the stock classifier against its in-graph-
// preprocessing variant under app-side bugs.
type AppendixInGraphRow struct {
	Variant  string
	Baseline float64
	Resize   float64
	Norm     float64
}

// AppendixInGraph shows that a model embedding its own preprocessing is
// structurally immune to app-side resize and normalization bugs: the
// in-graph variant's accuracy is identical with or without those bugs, while
// the stock model degrades.
func AppendixInGraph(n int) ([]AppendixInGraphRow, error) {
	if n <= 0 {
		n = EvalFrames
	}
	e, err := zoo.Get("mobilenetv2-mini")
	if err != nil {
		return nil, err
	}
	ing, err := models.WithInGraphPreprocessing(e.Mobile, datasets.ImageNetSize)
	if err != nil {
		return nil, err
	}
	samples := datasets.SynthImageNet(5555, n)

	stock := AppendixInGraphRow{Variant: "app-side preprocessing"}
	if stock.Baseline, err = evalClassifierAccuracy(e.Mobile, pipeline.Options{Resolver: fixedOptimized()}, n); err != nil {
		return nil, err
	}
	if stock.Resize, err = evalClassifierAccuracy(e.Mobile, pipeline.Options{Resolver: fixedOptimized(), Bug: pipeline.BugResize}, n); err != nil {
		return nil, err
	}
	if stock.Norm, err = evalClassifierAccuracy(e.Mobile, pipeline.Options{Resolver: fixedOptimized(), Bug: pipeline.BugNormalization}, n); err != nil {
		return nil, err
	}

	// The in-graph variant takes the raw capture; resize and normalization
	// simply do not exist app-side, so all three conditions coincide.
	ingAcc, err := evalInGraph(ing, samples)
	if err != nil {
		return nil, err
	}
	inRow := AppendixInGraphRow{Variant: "in-graph preprocessing", Baseline: ingAcc, Resize: ingAcc, Norm: ingAcc}
	return []AppendixInGraphRow{stock, inRow}, nil
}

func evalInGraph(m *graph.Model, samples []datasets.ImageSample) (float64, error) {
	ip, err := interp.New(m, fixedOptimized())
	if err != nil {
		return 0, err
	}
	preds := make([]int, len(samples))
	labels := make([]int, len(samples))
	for i, s := range samples {
		in := rawImageTensor(s.Image)
		out, err := ip.Run(in)
		if err != nil {
			return 0, err
		}
		preds[i], labels[i] = out.ArgMax(), s.Label
	}
	return metrics.Top1(preds, labels)
}

// rawImageTensor feeds the raw capture as float 0..255 — the only thing an
// app has to do for an in-graph-preprocessing model.
func rawImageTensor(im *imaging.Image) *tensor.Tensor {
	t := tensor.New(tensor.F32, 1, im.H, im.W, im.C)
	for i, p := range im.Pix {
		t.F[i] = float32(p)
	}
	return t
}

// RenderAppendixInGraph prints the in-graph preprocessing study.
func RenderAppendixInGraph(w io.Writer, rows []AppendixInGraphRow) {
	fprintf(w, "Appendix A — in-graph preprocessing immunity (MobileNet-v2)\n")
	fprintf(w, "%-26s %9s %8s %8s\n", "variant", "baseline", "resize", "norm")
	for _, r := range rows {
		fprintf(w, "%-26s %9.2f %8.2f %8.2f\n", r.Variant, r.Baseline, r.Resize, r.Norm)
	}
}
