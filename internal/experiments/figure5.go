package experiments

import (
	"io"

	"mlexray/internal/ops"
	"mlexray/internal/pipeline"
	"mlexray/internal/zoo"
)

// Figure5Row is one model's accuracy across deployment versions (Figure 5):
// the original checkpoint, the converted float model, the quantized model on
// the production (optimized) op resolver, and the quantized model on the
// reference op resolver — all on the historical (defective) kernel build.
type Figure5Row struct {
	Model        string
	Reference    float64 // checkpoint, reference kernels
	Mobile       float64 // converted float, optimized kernels
	MobileQuant  float64 // quantized, optimized kernels (OpResolver)
	MobileQuantR float64 // quantized, reference kernels (RefOpResolver)
}

// Figure5Models lists the models the paper's Figure 5 evaluates.
func Figure5Models() []string {
	return []string{"mobilenetv1-mini", "mobilenetv2-mini", "mobilenetv3-mini", "resnet-mini", "inception-mini"}
}

// Figure5 reproduces the model-optimization/quantization accuracy study.
func Figure5() ([]Figure5Row, error) {
	var rows []Figure5Row
	for _, name := range Figure5Models() {
		e, err := zoo.Get(name)
		if err != nil {
			return nil, err
		}
		row := Figure5Row{Model: name}
		if row.Reference, err = evalClassifierAccuracy(e.Checkpoint,
			pipeline.Options{Resolver: ops.NewReference(ops.Historical())}, EvalFrames); err != nil {
			return nil, err
		}
		if row.Mobile, err = evalClassifierAccuracy(e.Mobile,
			pipeline.Options{Resolver: ops.NewOptimized(ops.Historical())}, EvalFrames); err != nil {
			return nil, err
		}
		if row.MobileQuant, err = evalClassifierAccuracy(e.Quant,
			pipeline.Options{Resolver: ops.NewOptimized(ops.Historical())}, EvalFrames); err != nil {
			return nil, err
		}
		if row.MobileQuantR, err = evalClassifierAccuracy(e.Quant,
			pipeline.Options{Resolver: ops.NewReference(ops.Historical())}, EvalFrames); err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderFigure5 prints the figure as a table.
func RenderFigure5(w io.Writer, rows []Figure5Row) {
	fprintf(w, "Figure 5 — top-1 accuracy across deployment versions (historical kernels)\n")
	fprintf(w, "%-18s %10s %8s %12s %15s\n", "model", "reference", "mobile", "mobile-quant", "mobile-quant-ref")
	for _, r := range rows {
		fprintf(w, "%-18s %10.2f %8.2f %12.2f %15.2f\n", r.Model, r.Reference, r.Mobile, r.MobileQuant, r.MobileQuantR)
	}
}

// Figure5Fixed is the "after the fix" ablation: the same sweep on the
// repaired kernel build, showing quantization alone costs only a few points.
func Figure5Fixed() ([]Figure5Row, error) {
	var rows []Figure5Row
	for _, name := range Figure5Models() {
		e, err := zoo.Get(name)
		if err != nil {
			return nil, err
		}
		row := Figure5Row{Model: name}
		if row.Reference, err = evalClassifierAccuracy(e.Checkpoint,
			pipeline.Options{Resolver: ops.NewReference(ops.Fixed())}, EvalFrames); err != nil {
			return nil, err
		}
		if row.Mobile, err = evalClassifierAccuracy(e.Mobile,
			pipeline.Options{Resolver: ops.NewOptimized(ops.Fixed())}, EvalFrames); err != nil {
			return nil, err
		}
		if row.MobileQuant, err = evalClassifierAccuracy(e.Quant,
			pipeline.Options{Resolver: ops.NewOptimized(ops.Fixed())}, EvalFrames); err != nil {
			return nil, err
		}
		if row.MobileQuantR, err = evalClassifierAccuracy(e.Quant,
			pipeline.Options{Resolver: ops.NewReference(ops.Fixed())}, EvalFrames); err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}
