package experiments

import (
	"io"

	"mlexray/internal/core"
	"mlexray/internal/datasets"
	"mlexray/internal/imaging"
	"mlexray/internal/metrics"
	"mlexray/internal/models"
	"mlexray/internal/pipeline"
	"mlexray/internal/replay"
	"mlexray/internal/runner"
	"mlexray/internal/tensor"
	"mlexray/internal/zoo"
)

// Figure4aRow is one model's accuracy under each preprocessing bug
// (Figure 4a: "ML application performance degraded by preprocessing bugs").
type Figure4aRow struct {
	Model    string
	Baseline float64
	ByBug    map[pipeline.Bug]float64
}

// Figure4a evaluates every zoo classifier under each single preprocessing
// bug. Each bug is injected independently (each bar inherits only from the
// correct baseline, as in the paper).
func Figure4a() ([]Figure4aRow, error) {
	entries, err := classifierZoo()
	if err != nil {
		return nil, err
	}
	var rows []Figure4aRow
	for _, e := range entries {
		row := Figure4aRow{Model: e.Name, ByBug: map[pipeline.Bug]float64{}}
		row.Baseline, err = evalClassifierAccuracy(e.Mobile, pipeline.Options{Resolver: fixedOptimized()}, EvalFrames)
		if err != nil {
			return nil, err
		}
		for _, bug := range pipeline.AllImageBugs {
			acc, err := evalClassifierAccuracy(e.Mobile,
				pipeline.Options{Resolver: fixedOptimized(), Bug: bug}, EvalFrames)
			if err != nil {
				return nil, err
			}
			row.ByBug[bug] = acc
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderFigure4a prints the figure as a table.
func RenderFigure4a(w io.Writer, rows []Figure4aRow) {
	fprintf(w, "Figure 4a — image classification top-1 accuracy under preprocessing bugs\n")
	fprintf(w, "%-18s %8s %8s %8s %8s %8s\n", "model", "baseline", "resize", "channel", "norm", "rotation")
	for _, r := range rows {
		fprintf(w, "%-18s %8.2f %8.2f %8.2f %8.2f %8.2f\n", r.Model, r.Baseline,
			r.ByBug[pipeline.BugResize], r.ByBug[pipeline.BugChannel],
			r.ByBug[pipeline.BugNormalization], r.ByBug[pipeline.BugRotation])
	}
}

// Figure4bRow is one detector's mAP under each preprocessing bug.
type Figure4bRow struct {
	Model    string
	Baseline float64
	ByBug    map[pipeline.Bug]float64
}

// Figure4b evaluates the SSD and two-stage detectors on SynthCOCO under the
// preprocessing bugs (Figure 4b).
func Figure4b() ([]Figure4bRow, error) {
	samples := datasets.SynthCOCO(6666, 60)
	gt := make([][]metrics.GTBox, len(samples))
	for i, s := range samples {
		for _, b := range s.Boxes {
			gt[i] = append(gt[i], metrics.GTBox{Box: [4]float64{b.CY, b.CX, b.H, b.W}, Class: b.Class})
		}
	}
	var rows []Figure4bRow
	for _, name := range []string{"ssd-mini", "frcnn-mini"} {
		e, err := zoo.Get(name)
		if err != nil {
			return nil, err
		}
		row := Figure4bRow{Model: name, ByBug: map[pipeline.Bug]float64{}}
		images := make([]*imaging.Image, len(samples))
		for i := range samples {
			images[i] = samples[i].Image
		}
		evalMAP := func(bug pipeline.Bug) (float64, error) {
			// Batched detection compute (nil MonitorOptions: mAP eval needs
			// no telemetry). Per-frame detection slots keep the flattened
			// list in frame order regardless of worker scheduling.
			byFrame := make([][]metrics.DetBox, len(samples))
			_, err := replay.Detection(e.Mobile, pipeline.Options{Resolver: fixedOptimized(), Bug: bug}, images,
				runner.Options{Workers: ReplayWorkers, BatchFrames: ReplayBatch},
				func(i int, r replay.DetectResult) error {
					for _, d := range models.DecodeDetections(scoresOf(r.Scores), boxesOf(r.Boxes), e.Mobile.Meta.Anchors, 0.5, 0.45) {
						byFrame[i] = append(byFrame[i], metrics.DetBox{Box: d.Box, Class: d.Class, Score: d.Score, Image: i})
					}
					return nil
				})
			if err != nil {
				return 0, err
			}
			var dets []metrics.DetBox
			for _, fd := range byFrame {
				dets = append(dets, fd...)
			}
			return metrics.MeanAP(dets, gt, datasets.DetectionNumClasses, 0.5)
		}
		row.Baseline, err = evalMAP(pipeline.BugNone)
		if err != nil {
			return nil, err
		}
		for _, bug := range pipeline.AllImageBugs {
			m, err := evalMAP(bug)
			if err != nil {
				return nil, err
			}
			row.ByBug[bug] = m
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func scoresOf(t *tensor.Tensor) *tensor.Tensor { return t.Reshape(-1, 4) }
func boxesOf(t *tensor.Tensor) *tensor.Tensor  { return t.Reshape(-1, 4) }

// RenderFigure4b prints the detection figure.
func RenderFigure4b(w io.Writer, rows []Figure4bRow) {
	fprintf(w, "Figure 4b — object detection mAP@0.5 under preprocessing bugs\n")
	fprintf(w, "%-18s %8s %8s %8s %8s %8s\n", "model", "baseline", "resize", "channel", "norm", "rotation")
	for _, r := range rows {
		fprintf(w, "%-18s %8.2f %8.2f %8.2f %8.2f %8.2f\n", r.Model, r.Baseline,
			r.ByBug[pipeline.BugResize], r.ByBug[pipeline.BugChannel],
			r.ByBug[pipeline.BugNormalization], r.ByBug[pipeline.BugRotation])
	}
}

// Figure4cRow is one speech model's accuracy with the correct vs the wrong
// spectrogram normalization.
type Figure4cRow struct {
	Model      string
	Baseline   float64
	WrongNorm  float64
	Convention string
}

// Figure4c evaluates both KWS models (trained under different spectrogram
// normalization conventions) with correct and mismatched preprocessing.
func Figure4c() ([]Figure4cRow, error) {
	samples := datasets.SynthSpeech(7777, 96)
	var rows []Figure4cRow
	for _, name := range []string{"kws-mini-a", "kws-mini-b"} {
		e, err := zoo.Get(name)
		if err != nil {
			return nil, err
		}
		eval := func(bug pipeline.Bug) (float64, error) {
			base, err := pipeline.NewSpeechRecognizer(e.Mobile, pipeline.Options{Resolver: fixedOptimized(), Bug: bug})
			if err != nil {
				return 0, err
			}
			preds := make([]int, len(samples))
			labels := make([]int, len(samples))
			_, err = replayLog(len(samples), nil, func(*core.Monitor) (runner.ProcessFunc, error) {
				sr, err := base.Clone(nil) // accuracy eval needs no telemetry
				if err != nil {
					return nil, err
				}
				return func(i int) error {
					p, _, err := sr.Recognize(samples[i].Wave)
					if err != nil {
						return err
					}
					preds[i], labels[i] = p, samples[i].Label
					return nil
				}, nil
			})
			if err != nil {
				return 0, err
			}
			return metrics.Top1(preds, labels)
		}
		row := Figure4cRow{Model: name, Convention: e.Mobile.Meta.SpecNorm}
		if row.Baseline, err = eval(pipeline.BugNone); err != nil {
			return nil, err
		}
		if row.WrongNorm, err = eval(pipeline.BugSpecNorm); err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderFigure4c prints the speech figure.
func RenderFigure4c(w io.Writer, rows []Figure4cRow) {
	fprintf(w, "Figure 4c — speech keyword accuracy under spectrogram normalization mismatch\n")
	fprintf(w, "%-14s %-14s %9s %10s\n", "model", "convention", "baseline", "wrong-norm")
	for _, r := range rows {
		fprintf(w, "%-14s %-14s %9.2f %10.2f\n", r.Model, r.Convention, r.Baseline, r.WrongNorm)
	}
}
