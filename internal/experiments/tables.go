package experiments

import (
	"io"
	"math/rand"
	"time"

	"mlexray/internal/core"
	"mlexray/internal/datasets"
	"mlexray/internal/device"
	"mlexray/internal/graph"
	"mlexray/internal/ops"
	"mlexray/internal/pipeline"
	"mlexray/internal/replay"
	"mlexray/internal/zoo"
)

// ---- Table 2: run-time instrumentation overhead ----

// Table2Row is one (device, instrumented?) configuration.
type Table2Row struct {
	Device       string
	Instrumented bool
	LatMeanMs    float64
	LatStdMs     float64
	MemoryMB     float64
	DiskKBPerFrm float64
	// WallMsPerFrm is the suite's own measured replay throughput for this
	// configuration (wall-clock per frame on the batched parallel engine) —
	// reported alongside the modeled device latency so the replay engine's
	// performance is tracked across PRs.
	WallMsPerFrm float64
}

// Table2 measures the always-on (stats-only) instrumentation overhead of
// the MobileNet-v2 classification app on the simulated phones: modeled
// inference latency with and without the monitor, memory footprint, and log
// bytes per frame.
func Table2(frames int) ([]Table2Row, error) {
	if frames <= 0 {
		frames = 100
	}
	e, err := zoo.Get("mobilenetv2-mini")
	if err != nil {
		return nil, err
	}
	samples := datasets.SynthImageNet(5555, frames)
	images := classificationImages(samples)
	var rows []Table2Row
	for _, devName := range []string{"Pixel4", "Pixel4-GPU", "Pixel3", "Pixel3-GPU"} {
		dev, err := device.ByName(devName)
		if err != nil {
			return nil, err
		}
		for _, instrumented := range []bool{false, true} {
			// Deterministic per-frame jitter models real-device variance;
			// factors are drawn up front in frame order so the parallel
			// replay reports the numbers a sequential run would.
			jitter := rand.New(rand.NewSource(int64(len(devName)) * 77))
			factors := make([]float64, len(samples))
			for i := range factors {
				factors[i] = 1 + 0.04*(jitter.Float64()-0.5)
			}
			// The uninstrumented rows replay without monitors (nil
			// MonitorOptions) — the replay engine only tags frame ownership.
			var monOpts []core.MonitorOption
			if instrumented {
				monOpts = []core.MonitorOption{core.WithCaptureMode(core.CaptureStats)}
			}
			lats := make([]float64, len(samples))
			wallStart := time.Now()
			mergedLog, err := replay.Classification(e.Mobile,
				pipeline.Options{Resolver: fixedOptimized(), Device: dev},
				images, sweepOptions(monOpts),
				func(i int, r replay.ClassifyResult) error {
					ns := float64(r.Modeled)
					if instrumented {
						ns += float64(dev.InstrLatencyPerFrame)
					}
					lats[i] = ns * factors[i]
					return nil
				})
			if err != nil {
				return nil, err
			}
			wall := time.Since(wallStart)
			row := Table2Row{Device: devName, Instrumented: instrumented}
			row.LatMeanMs, row.LatStdMs = meanStd(lats)
			row.LatMeanMs /= 1e6
			row.LatStdMs /= 1e6
			row.WallMsPerFrm = wall.Seconds() * 1e3 / float64(frames)
			mem := float64(e.Mobile.ActivationBytes() + e.Mobile.WeightBytes())
			if instrumented {
				mem += float64(dev.InstrMemoryBytes)
				logBytes, err := mergedLog.SizeBytes()
				if err != nil {
					return nil, err
				}
				row.DiskKBPerFrm = float64(logBytes) / float64(frames) / 1024
			}
			row.MemoryMB = mem / 1e6
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func meanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	var sq float64
	for _, x := range xs {
		d := x - mean
		sq += d * d
	}
	return mean, sqrtf(sq / float64(len(xs)))
}

func sqrtf(x float64) float64 {
	if x <= 0 {
		return 0
	}
	// Newton's method is fine here; avoids importing math for one call.
	z := x
	for i := 0; i < 20; i++ {
		z = (z + x/z) / 2
	}
	return z
}

// RenderTable2 prints the overhead table. The replay column is the suite's
// own measured wall-clock per frame (batched parallel engine), not a device
// projection.
func RenderTable2(w io.Writer, rows []Table2Row) {
	fprintf(w, "Table 2 — run-time instrumentation overhead (MobileNet-v2 app)\n")
	fprintf(w, "%-14s %-6s %14s %10s %14s %15s\n", "device", "inst", "latency (ms)", "mem (MB)", "disk (KB/frm)", "replay (ms/frm)")
	for _, r := range rows {
		inst := "-"
		if r.Instrumented {
			inst = "yes"
		}
		fprintf(w, "%-14s %-6s %8.1f±%-5.1f %10.2f %14.2f %15.3f\n",
			r.Device, inst, r.LatMeanMs, r.LatStdMs, r.MemoryMB, r.DiskKBPerFrm, r.WallMsPerFrm)
	}
}

// ---- Tables 3 and 5: offline per-layer validation overhead ----

// Table3Row is one model's offline validation cost.
type Table3Row struct {
	Model    string
	Layers   int
	Params   int
	LatSec   float64
	MemoryMB float64
	DiskMB   float64
	// DiskMBBin is the same log serialized in the binary format — the
	// raw-payload encoding sheds the base64 expansion plus JSON framing.
	DiskMBBin float64
	// WallSec is the measured wall-clock of the whole replay on the batched
	// parallel engine — the suite's own throughput, alongside the modeled
	// on-device latency LatSec.
	WallSec float64
}

// Table3Models lists the models of the overhead tables (the paper's
// Mobilenet v1/v2, Resnet50, Inception, Densenet ordering by layer count).
func Table3Models() []string {
	return []string{"mobilenetv1-mini", "mobilenetv2-mini", "resnet-mini", "inception-mini", "densenet-mini"}
}

// Table3 measures full per-layer logging overhead on-device for the
// quantized models; Table5 is the float variant (appendix).
func Table3(frames int) ([]Table3Row, error) {
	return offlineOverhead(frames, true)
}

// Table5 is the float-model variant of Table 3.
func Table5(frames int) ([]Table3Row, error) {
	return offlineOverhead(frames, false)
}

func offlineOverhead(frames int, quantized bool) ([]Table3Row, error) {
	if frames <= 0 {
		frames = 20
	}
	dev := device.Pixel4()
	samples := datasets.SynthImageNet(5555, frames)
	var rows []Table3Row
	for _, name := range Table3Models() {
		e, err := zoo.Get(name)
		if err != nil {
			return nil, err
		}
		m := e.Mobile
		if quantized {
			m = e.Quant
		}
		modeledNs := make([]time.Duration, len(samples))
		wallStart := time.Now()
		mergedLog, err := replay.Classification(m,
			pipeline.Options{Resolver: fixedOptimized(), Device: dev},
			classificationImages(samples),
			sweepOptions([]core.MonitorOption{core.WithCaptureMode(core.CaptureFull), core.WithPerLayer(true)}),
			func(i int, r replay.ClassifyResult) error {
				modeledNs[i] = r.Modeled
				return nil
			})
		if err != nil {
			return nil, err
		}
		wall := time.Since(wallStart)
		var modeled time.Duration
		for _, ns := range modeledNs {
			modeled += ns
		}
		logBytes, err := mergedLog.SizeBytes()
		if err != nil {
			return nil, err
		}
		binBytes, err := mergedLog.EncodedSize(core.FormatBinary)
		if err != nil {
			return nil, err
		}
		total := modeled + dev.PerLayerLoggingLatency(logBytes)
		rows = append(rows, Table3Row{
			Model:     name,
			Layers:    len(m.Nodes),
			Params:    m.NumParams(),
			LatSec:    total.Seconds(),
			MemoryMB:  float64(m.ActivationBytes()+m.WeightBytes()+mergedLog.MemoryFootprintBytes()) / 1e6,
			DiskMB:    float64(logBytes) / 1e6,
			DiskMBBin: float64(binBytes) / 1e6,
			WallSec:   wall.Seconds(),
		})
	}
	return rows, nil
}

// RenderTable3 prints an offline-overhead table with the given caption. The
// replay column is the measured wall-clock of the suite's own batched
// parallel replay, alongside the modeled on-device latency.
func RenderTable3(w io.Writer, caption string, rows []Table3Row) {
	fprintf(w, "%s\n", caption)
	fprintf(w, "%-18s %7s %9s %9s %9s %8s %8s %10s\n", "model", "layers", "params", "lat (s)", "mem (MB)", "jsonl(MB)", "bin(MB)", "replay (s)")
	for _, r := range rows {
		fprintf(w, "%-18s %7d %9d %9.2f %9.2f %8.2f %8.2f %10.3f\n", r.Model, r.Layers, r.Params, r.LatSec, r.MemoryMB, r.DiskMB, r.DiskMBBin, r.WallSec)
	}
}

// ---- Table 4: latency by layer type ----

// Table4Row is one layer class's total latency under each configuration.
type Table4Row struct {
	Class string
	Count int
	Ms    map[string]float64 // column -> total ms
}

// Table4Columns names the four configurations of the paper's Table 4.
func Table4Columns() []string {
	return []string{"Mobile", "MobileQuant", "MobileQuantRef", "Emulator"}
}

// Table4 reproduces the per-layer-type latency breakdown of MobileNet-v2:
// float-optimized, quantized-optimized and quantized-reference on the Pixel
// 4, plus float-optimized on the x86 emulator.
func Table4() ([]Table4Row, error) {
	e, err := zoo.Get("mobilenetv2-mini")
	if err != nil {
		return nil, err
	}
	pixel4 := device.Pixel4()
	emu := device.EmulatorX86()
	configs := []struct {
		column   string
		model    *graph.Model
		resolver *ops.Resolver
		dev      *device.Profile
	}{
		{"Mobile", e.Mobile, ops.NewOptimized(ops.Historical()), pixel4},
		{"MobileQuant", e.Quant, ops.NewOptimized(ops.Historical()), pixel4},
		{"MobileQuantRef", e.Quant, ops.NewReference(ops.Historical()), pixel4},
		{"Emulator", e.Mobile, ops.NewOptimized(ops.Historical()), emu},
	}
	byClass := map[string]*Table4Row{}
	var order []string
	for _, cfg := range configs {
		mon := core.NewMonitor(core.WithCaptureMode(core.CaptureStats), core.WithPerLayer(true))
		cl, err := pipeline.NewClassifier(cfg.model, pipeline.Options{
			Resolver: cfg.resolver, Device: cfg.dev, Monitor: mon,
		})
		if err != nil {
			return nil, err
		}
		s := datasets.SynthImageNet(5555, 1)[0]
		if _, _, err := cl.Classify(s.Image); err != nil {
			return nil, err
		}
		agg := core.LatencyByClass(mon.Log(), func(opType string) string {
			return classOfOpType(opType)
		})
		for _, a := range agg {
			row, ok := byClass[a.Class]
			if !ok {
				row = &Table4Row{Class: a.Class, Ms: map[string]float64{}}
				byClass[a.Class] = row
				order = append(order, a.Class)
			}
			if a.Count > row.Count {
				row.Count = a.Count
			}
			row.Ms[cfg.column] += a.TotalNs / 1e6
		}
	}
	var rows []Table4Row
	for _, c := range []string{"D-Conv", "Conv", "FC", "Mean", "Pad", "Add", "Softmax", "Quantize", "Other"} {
		if r, ok := byClass[c]; ok {
			rows = append(rows, *r)
		}
	}
	return rows, nil
}

func classOfOpType(opType string) string {
	for op := graph.OpType(0); op < graph.OpType(64); op++ {
		if op.String() == opType {
			return op.LayerClass()
		}
	}
	return "Other"
}

// RenderTable4 prints the layer-type latency table.
func RenderTable4(w io.Writer, rows []Table4Row) {
	fprintf(w, "Table 4 — MobileNet-v2 latency by layer type (ms, modeled)\n")
	fprintf(w, "%-10s %6s %10s %12s %15s %10s\n", "class", "count", "Mobile", "MobileQuant", "MobileQuantRef", "Emulator")
	var totals [4]float64
	for _, r := range rows {
		fprintf(w, "%-10s %6d %10.2f %12.2f %15.2f %10.2f\n", r.Class, r.Count,
			r.Ms["Mobile"], r.Ms["MobileQuant"], r.Ms["MobileQuantRef"], r.Ms["Emulator"])
		totals[0] += r.Ms["Mobile"]
		totals[1] += r.Ms["MobileQuant"]
		totals[2] += r.Ms["MobileQuantRef"]
		totals[3] += r.Ms["Emulator"]
	}
	fprintf(w, "%-10s %6s %10.2f %12.2f %15.2f %10.2f\n", "Total", "", totals[0], totals[1], totals[2], totals[3])
}
