// Package experiments regenerates every table and figure of the paper's
// evaluation (and appendix) against the simulated edge stack. Each
// experiment returns structured rows and offers a text renderer; the root
// bench harness and cmd/benchtab drive them. EXPERIMENTS.md records the
// paper-vs-measured comparison for each.
package experiments

import (
	"fmt"
	"io"

	"mlexray/internal/datasets"
	"mlexray/internal/device"
	"mlexray/internal/graph"
	"mlexray/internal/metrics"
	"mlexray/internal/ops"
	"mlexray/internal/pipeline"
	"mlexray/internal/zoo"
)

// EvalFrames is the evaluation-set size for accuracy experiments: large
// enough for stable estimates, small enough to keep the full suite fast.
const EvalFrames = 120

// evalClassifierAccuracy measures top-1 accuracy of a model version through
// a pipeline with the given options.
func evalClassifierAccuracy(m *graph.Model, opts pipeline.Options, n int) (float64, error) {
	cl, err := pipeline.NewClassifier(m, opts)
	if err != nil {
		return 0, err
	}
	samples := datasets.SynthImageNet(5555, n)
	preds := make([]int, len(samples))
	labels := make([]int, len(samples))
	for i, s := range samples {
		p, _, err := cl.Classify(s.Image)
		if err != nil {
			return 0, err
		}
		preds[i], labels[i] = p, s.Label
	}
	return metrics.Top1(preds, labels)
}

// fixedOptimized is the resolver an app uses after all kernel fixes — the
// baseline for preprocessing experiments, isolating preprocessing effects
// from kernel defects.
func fixedOptimized() *ops.Resolver { return ops.NewOptimized(ops.Fixed()) }

// classifierZoo resolves the Figure 4a / Figure 5 model list.
func classifierZoo() ([]*zoo.Entry, error) {
	var out []*zoo.Entry
	for _, name := range zoo.ClassifierNames() {
		e, err := zoo.Get(name)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}

func fprintf(w io.Writer, format string, args ...interface{}) {
	fmt.Fprintf(w, format, args...)
}

func deviceByName(name string) (*device.Profile, error) { return device.ByName(name) }
