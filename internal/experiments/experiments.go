// Package experiments regenerates every table and figure of the paper's
// evaluation (and appendix) against the simulated edge stack. Each
// experiment returns structured rows and offers a text renderer; the root
// bench harness and cmd/benchtab drive them. EXPERIMENTS.md records the
// paper-vs-measured comparison for each.
//
// All dataset sweeps run on the parallel replay engine (internal/runner):
// frames shard across ReplayWorkers workers, each owning a pipeline replica,
// and shard telemetry merges deterministically by frame index — so every
// number in every table is identical to a sequential run while the suite
// scales with the core count. Classification sweeps additionally run on the
// batched inference path (internal/replay + pipeline.BatchClassifier):
// workers execute ReplayBatch frames per interpreter invoke, amortizing
// per-node dispatch, with telemetry still byte-identical to sequential.
package experiments

import (
	"fmt"
	"io"

	"mlexray/internal/core"
	"mlexray/internal/datasets"
	"mlexray/internal/device"
	"mlexray/internal/graph"
	"mlexray/internal/imaging"
	"mlexray/internal/metrics"
	"mlexray/internal/ops"
	"mlexray/internal/pipeline"
	"mlexray/internal/replay"
	"mlexray/internal/runner"
	"mlexray/internal/zoo"
)

// EvalFrames is the evaluation-set size for accuracy experiments: large
// enough for stable estimates, small enough to keep the full suite fast.
// Tests reduce it under -short.
var EvalFrames = 120

// ReplayWorkers is the worker-pool size the sweeps hand to the parallel
// replay engine; 0 means GOMAXPROCS. Results are identical for any value.
var ReplayWorkers = 0

// ReplayBatch is the frame-batch size per worker dispatch. Classification
// sweeps run whole batches through single batched interpreter invokes;
// other tasks batch dispatch only. Results are identical for any value.
var ReplayBatch = 8

// KernelBackend is the kernel micro-kernel backend accuracy sweeps plan
// their optimized pipelines with (zero value = ops.BackendBlocked). Accuracy
// metrics are identical for any bitwise-stable backend and validator-bounded
// for ops.BackendTiled; AblationKernelBackend measures the difference
// directly.
var KernelBackend ops.Backend

// sweepOptions are the runner options every sweep shares.
func sweepOptions(monOpts []core.MonitorOption) runner.Options {
	return runner.Options{Workers: ReplayWorkers, BatchFrames: ReplayBatch, MonitorOptions: monOpts}
}

// replayLog shards a replay across the worker pool and returns the merged
// telemetry log. factory builds one worker's per-frame body around its
// monitor shard.
func replayLog(frames int, monOpts []core.MonitorOption, factory runner.WorkerFactory) (*core.Log, error) {
	return runner.Replay(frames, factory, sweepOptions(monOpts))
}

// classificationImages projects an image-sample set to the replay input.
func classificationImages(samples []datasets.ImageSample) []*imaging.Image {
	return replay.Images(samples)
}

// evalClassifierAccuracy measures top-1 accuracy of a model version through
// a pipeline with the given options, sharding frame batches across the
// replay pool on the batched inference path. Per-frame results land in
// frame-indexed slots, so worker scheduling cannot perturb the metric.
// Accuracy evals discard telemetry (nil MonitorOptions), so replicas run
// uninstrumented — no per-frame tensor-stats cost on the hot path.
func evalClassifierAccuracy(m *graph.Model, opts pipeline.Options, n int) (float64, error) {
	opts.Backend = KernelBackend
	samples := datasets.SynthImageNet(5555, n)
	preds := make([]int, len(samples))
	labels := make([]int, len(samples))
	_, err := replay.Classification(m, opts, classificationImages(samples),
		runner.Options{Workers: ReplayWorkers, BatchFrames: ReplayBatch},
		func(i int, r replay.ClassifyResult) error {
			preds[i], labels[i] = r.Pred, samples[i].Label
			return nil
		})
	if err != nil {
		return 0, err
	}
	return metrics.Top1(preds, labels)
}

// fixedOptimized is the resolver an app uses after all kernel fixes — the
// baseline for preprocessing experiments, isolating preprocessing effects
// from kernel defects.
func fixedOptimized() *ops.Resolver { return ops.NewOptimized(ops.Fixed()) }

// classifierZoo resolves the Figure 4a / Figure 5 model list.
func classifierZoo() ([]*zoo.Entry, error) {
	var out []*zoo.Entry
	for _, name := range zoo.ClassifierNames() {
		e, err := zoo.Get(name)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}

func fprintf(w io.Writer, format string, args ...interface{}) {
	fmt.Fprintf(w, format, args...)
}

func deviceByName(name string) (*device.Profile, error) { return device.ByName(name) }
