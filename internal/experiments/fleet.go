package experiments

import (
	"fmt"
	"io"

	"mlexray/internal/core"
	"mlexray/internal/datasets"
	"mlexray/internal/device"
	"mlexray/internal/imaging"
	"mlexray/internal/ops"
	"mlexray/internal/pipeline"
	"mlexray/internal/replay"
	"mlexray/internal/runner"
	"mlexray/internal/zoo"
)

// FleetRow is one device's row of the fleet replay table: its share of the
// sharded frame range plus the FleetReport rollups (agreement with the
// reference, mean per-layer drift, modeled latency) and the cross-device
// divergence verdict.
type FleetRow struct {
	Device        string
	Workers       int
	Batch         int
	Frames        int
	SharePct      float64
	Agreement     float64
	MeanNRMSE     float64
	MeanModeledMs float64
	Flagged       bool
}

// fleetDevices is the demo fleet every task shares: a batched two-worker
// Pixel 4, a Pixel 3 (the slot the bug is injected into) and the x86
// emulator, dealt frames round-robin.
func fleetDevices() []runner.DeviceSpec {
	return []runner.DeviceSpec{
		{Profile: device.Pixel4(), Workers: 2, BatchFrames: 4},
		{Profile: device.Pixel3(), Workers: 1, BatchFrames: 2},
		{Profile: device.EmulatorX86(), Workers: 1, BatchFrames: 2},
	}
}

// Fleet runs the heterogeneous-fleet validation demo for the given task
// ("classification" — MobileNet-v2 over SynthImageNet — or "detection" —
// the SSD detector over SynthCOCO; empty means classification): a
// three-profile fleet shards one replay round-robin, with a normalization
// bug injected into the Pixel 3's pipeline only — the device-local fault
// class fleet validation exists to isolate. Per-device shard logs
// cross-validate against a sequential reference replay; the returned rows
// carry each device's rollups, and exactly the bugged device comes back
// flagged.
func Fleet(frames int, task string) ([]FleetRow, error) {
	if frames <= 0 {
		frames = 24
	}
	const bugged = 1 // the Pixel 3 slot
	monOpts := []core.MonitorOption{core.WithCaptureMode(core.CaptureFull), core.WithPerLayer(true)}
	fleet := &runner.Fleet{
		Devices:        fleetDevices(),
		Policy:         runner.RoundRobin{},
		MonitorOptions: monOpts,
	}
	perDevice := func(dev int, spec runner.DeviceSpec, o *pipeline.Options) {
		if dev == bugged {
			o.Bug = pipeline.BugNormalization
		}
	}
	edgeOpts := pipeline.Options{Resolver: fixedOptimized()}
	refPopts := pipeline.Options{Resolver: ops.NewReference(ops.Fixed())}
	refRopts := runner.Options{Workers: ReplayWorkers, BatchFrames: ReplayBatch, MonitorOptions: monOpts}

	var res *runner.FleetResult
	var ref *core.Log
	switch task {
	case "", "classification":
		entry, err := zoo.Get("mobilenetv2-mini")
		if err != nil {
			return nil, err
		}
		images := classificationImages(datasets.SynthImageNet(5555, frames))
		if res, err = replay.FleetClassification(entry.Mobile, edgeOpts, images, fleet, perDevice); err != nil {
			return nil, err
		}
		if ref, err = replay.Classification(entry.Mobile, refPopts, images, refRopts, nil); err != nil {
			return nil, err
		}
	case "detection":
		entry, err := zoo.Get("ssd-mini")
		if err != nil {
			return nil, err
		}
		samples := datasets.SynthCOCO(6666, frames)
		images := make([]*imaging.Image, len(samples))
		for i := range samples {
			images[i] = samples[i].Image
		}
		if res, err = replay.FleetDetection(entry.Mobile, edgeOpts, images, fleet, perDevice); err != nil {
			return nil, err
		}
		if ref, err = replay.Detection(entry.Mobile, refPopts, images, refRopts, nil); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("experiments: unknown fleet task %q (want classification or detection)", task)
	}

	shards := make([]core.DeviceShardLog, len(fleet.Devices))
	for d, spec := range fleet.Devices {
		shards[d] = core.DeviceShardLog{Device: spec.Name(), Log: res.DeviceLogs[d]}
	}
	rep, err := core.FleetValidate(shards, ref, core.DefaultValidateOptions())
	if err != nil {
		return nil, err
	}

	rows := make([]FleetRow, len(rep.Devices))
	for d, dr := range rep.Devices {
		spec := fleet.Devices[d]
		rows[d] = FleetRow{
			Device:        dr.Device,
			Workers:       spec.Workers,
			Batch:         spec.BatchFrames,
			Frames:        res.Frames(d),
			SharePct:      100 * float64(res.Frames(d)) / float64(frames),
			Agreement:     dr.OutputAgreement,
			MeanNRMSE:     dr.MeanNRMSE,
			MeanModeledMs: dr.MeanModeledNs / 1e6,
			Flagged:       dr.Flagged,
		}
	}
	return rows, nil
}

// RenderFleet prints the fleet replay table.
func RenderFleet(w io.Writer, task string, rows []FleetRow) {
	if task == "" {
		task = "classification"
	}
	fprintf(w, "Fleet replay (%s) — heterogeneous device sharding with per-device validation\n", task)
	fprintf(w, "(normalization bug injected into the Pixel3 pipeline only)\n")
	fprintf(w, "%-14s %7s %5s %6s %6s %9s %8s %10s %8s\n",
		"device", "workers", "batch", "frames", "share", "agreement", "nRMSE", "modeled-ms", "flagged")
	for _, r := range rows {
		mark := " "
		if r.Flagged {
			mark = "X"
		}
		fprintf(w, "%-14s %7d %5d %6d %5.1f%% %9.2f %8.4f %10.2f %8s\n",
			r.Device, r.Workers, r.Batch, r.Frames, r.SharePct, r.Agreement, r.MeanNRMSE, r.MeanModeledMs, mark)
	}
}
