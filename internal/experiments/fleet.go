package experiments

import (
	"io"

	"mlexray/internal/core"
	"mlexray/internal/datasets"
	"mlexray/internal/device"
	"mlexray/internal/ops"
	"mlexray/internal/pipeline"
	"mlexray/internal/replay"
	"mlexray/internal/runner"
	"mlexray/internal/zoo"
)

// FleetRow is one device's row of the fleet replay table: its share of the
// sharded frame range plus the FleetReport rollups (agreement with the
// reference, mean per-layer drift, modeled latency) and the cross-device
// divergence verdict.
type FleetRow struct {
	Device        string
	Workers       int
	Batch         int
	Frames        int
	SharePct      float64
	Agreement     float64
	MeanNRMSE     float64
	MeanModeledMs float64
	Flagged       bool
}

// Fleet runs the heterogeneous-fleet validation demo: a three-profile fleet
// (a batched two-worker Pixel 4, a Pixel 3, the x86 emulator) shards one
// MobileNet-v2 replay round-robin, with a normalization bug injected into
// the Pixel 3's pipeline only — the device-local fault class fleet
// validation exists to isolate. Per-device shard logs cross-validate
// against a sequential reference replay; the returned rows carry each
// device's rollups, and exactly the bugged device comes back flagged.
func Fleet(frames int) ([]FleetRow, error) {
	if frames <= 0 {
		frames = 24
	}
	const bugged = 1 // the Pixel 3 slot
	entry, err := zoo.Get("mobilenetv2-mini")
	if err != nil {
		return nil, err
	}
	images := classificationImages(datasets.SynthImageNet(5555, frames))
	monOpts := []core.MonitorOption{core.WithCaptureMode(core.CaptureFull), core.WithPerLayer(true)}

	fleet := &runner.Fleet{
		Devices: []runner.DeviceSpec{
			{Profile: device.Pixel4(), Workers: 2, BatchFrames: 4},
			{Profile: device.Pixel3(), Workers: 1, BatchFrames: 2},
			{Profile: device.EmulatorX86(), Workers: 1, BatchFrames: 2},
		},
		Policy:         runner.RoundRobin{},
		MonitorOptions: monOpts,
	}
	res, err := replay.FleetClassification(entry.Mobile,
		pipeline.Options{Resolver: fixedOptimized()}, images, fleet,
		func(dev int, spec runner.DeviceSpec, o *pipeline.Options) {
			if dev == bugged {
				o.Bug = pipeline.BugNormalization
			}
		})
	if err != nil {
		return nil, err
	}

	ref, err := replay.Classification(entry.Mobile,
		pipeline.Options{Resolver: ops.NewReference(ops.Fixed())}, images,
		runner.Options{Workers: ReplayWorkers, BatchFrames: ReplayBatch, MonitorOptions: monOpts}, nil)
	if err != nil {
		return nil, err
	}

	shards := make([]core.DeviceShardLog, len(fleet.Devices))
	for d, spec := range fleet.Devices {
		shards[d] = core.DeviceShardLog{Device: spec.Name(), Log: res.DeviceLogs[d]}
	}
	rep, err := core.FleetValidate(shards, ref, core.DefaultValidateOptions())
	if err != nil {
		return nil, err
	}

	rows := make([]FleetRow, len(rep.Devices))
	for d, dr := range rep.Devices {
		spec := fleet.Devices[d]
		rows[d] = FleetRow{
			Device:        dr.Device,
			Workers:       spec.Workers,
			Batch:         spec.BatchFrames,
			Frames:        res.Frames(d),
			SharePct:      100 * float64(res.Frames(d)) / float64(frames),
			Agreement:     dr.OutputAgreement,
			MeanNRMSE:     dr.MeanNRMSE,
			MeanModeledMs: dr.MeanModeledNs / 1e6,
			Flagged:       dr.Flagged,
		}
	}
	return rows, nil
}

// RenderFleet prints the fleet replay table.
func RenderFleet(w io.Writer, rows []FleetRow) {
	fprintf(w, "Fleet replay — heterogeneous device sharding with per-device validation\n")
	fprintf(w, "(normalization bug injected into the Pixel3 pipeline only)\n")
	fprintf(w, "%-14s %7s %5s %6s %6s %9s %8s %10s %8s\n",
		"device", "workers", "batch", "frames", "share", "agreement", "nRMSE", "modeled-ms", "flagged")
	for _, r := range rows {
		mark := " "
		if r.Flagged {
			mark = "X"
		}
		fprintf(w, "%-14s %7d %5d %6d %5.1f%% %9.2f %8.4f %10.2f %8s\n",
			r.Device, r.Workers, r.Batch, r.Frames, r.SharePct, r.Agreement, r.MeanNRMSE, r.MeanModeledMs, mark)
	}
}
