// Package device is the edge-hardware substrate: a first-order latency model
// standing in for the paper's Pixel 4 / Pixel 3 phones and the x86 Android
// emulator. Per-node latency is baseNs + nsPerMAC * MACs + nsPerByte * bytes,
// with nsPerMAC keyed by (kernel resolver, compute kind, op class) and
// calibrated so the Table 4 ratios hold: reference quantized kernels are
// orders of magnitude slower than optimized ones; quantized conv is slower
// than float conv on the optimized ARM path while quantized depthwise is
// faster; the x86 emulator is ~44x slower on float conv but comparable on
// depthwise (the ARM-specific optimizations don't transfer).
//
// The simulator also models instrumentation overhead (Table 2) and exposes a
// simulated orientation sensor.
package device

import (
	"fmt"
	"time"

	"mlexray/internal/graph"
	"mlexray/internal/ops"
)

// Profile models one device configuration.
type Profile struct {
	Name string
	// speed scales every cost (Pixel 3 ≈ 1.22x the Pixel 4's CPU times).
	speed float64
	// gpu selects the GPU delegate cost table.
	gpu bool
	// x86 selects the emulator cost table.
	x86 bool

	// Instrumentation overhead per frame (Table 2): stats-only logging.
	InstrLatencyPerFrame time.Duration
	InstrMemoryBytes     int
	// Per-layer capture overhead when running offline validation: cost per
	// logged byte (Table 3/5's multi-second logging passes).
	PerLayerLogNsPerByte float64
}

// Pixel4 returns the Pixel 4 CPU profile (4 threads, the paper's default).
func Pixel4() *Profile {
	return &Profile{
		Name: "Pixel4", speed: 1,
		InstrLatencyPerFrame: 1400 * time.Microsecond,
		InstrMemoryBytes:     3_700_000,
		PerLayerLogNsPerByte: 90,
	}
}

// Pixel4GPU returns the Pixel 4 with the Adreno 640 GPU delegate.
func Pixel4GPU() *Profile {
	p := Pixel4()
	p.Name = "Pixel4-GPU"
	p.gpu = true
	// GPU logging costs more per frame: tensor readback stalls the queue.
	p.InstrLatencyPerFrame = 2400 * time.Microsecond
	return p
}

// Pixel3 returns the Pixel 3 CPU profile.
func Pixel3() *Profile {
	p := Pixel4()
	p.Name = "Pixel3"
	p.speed = 1.22
	p.InstrMemoryBytes = 3_100_000
	p.InstrLatencyPerFrame = 1300 * time.Microsecond
	return p
}

// Pixel3GPU returns the Pixel 3 with the Adreno 630 GPU delegate.
func Pixel3GPU() *Profile {
	p := Pixel3()
	p.Name = "Pixel3-GPU"
	p.gpu = true
	p.speed = 1.7
	p.InstrLatencyPerFrame = 1600 * time.Microsecond
	return p
}

// EmulatorX86 returns the x86 Android-emulator profile (§4.5's last column).
func EmulatorX86() *Profile {
	p := Pixel4()
	p.Name = "Emulator-x86"
	p.x86 = true
	return p
}

// nsPerMAC returns the cost coefficient for one multiply-accumulate.
// Values are calibrated against Table 4's MobileNet-v2 totals.
func (p *Profile) nsPerMAC(op graph.OpType, kind ops.ComputeKind, resolver string) float64 {
	class := op.LayerClass()
	quant := kind == ops.KindQuant
	ref := resolver == "reference"

	if p.gpu {
		// The GPU delegate runs float graphs ~7.7x faster on conv-heavy
		// work and does not accelerate the reference resolver (it falls
		// back to CPU).
		if !ref {
			switch class {
			case "Conv":
				return 0.013
			case "D-Conv":
				return 0.06
			default:
				return 0.05
			}
		}
	}
	if p.x86 {
		// The emulator lacks the ARM NEON paths: float conv is ~44x slower,
		// depthwise comparable (it was memory-bound anyway), quantized
		// kernels fall back to scalar code.
		switch class {
		case "Conv":
			if quant {
				return 9.0
			}
			return 4.4
		case "D-Conv":
			if quant {
				return 2.2
			}
			return 1.55
		case "FC":
			return 1.0
		default:
			return 0.6
		}
	}
	// ARM CPU path.
	switch class {
	case "Conv":
		switch {
		case quant && ref:
			return 58.0 // reference quantized conv: naive integer loops
		case quant:
			return 0.14 // optimized quantized conv — slower than float (§4.5a)
		case ref:
			return 2.0
		default:
			return 0.1 // optimized float conv (GEMM)
		}
	case "D-Conv":
		switch {
		case quant && ref:
			return 37.0
		case quant:
			return 0.29 // quantized depthwise is faster than quant conv (§4.5b)
		case ref:
			return 8.0
		default:
			return 1.23 // float depthwise is memory-bound: ~8x the per-MAC cost of conv
		}
	case "FC":
		if quant && ref {
			return 8.0
		}
		return 1.0
	case "Mean":
		if quant && ref {
			return 4.0
		}
		return 0.9
	case "Add":
		if ref {
			return 12.0
		}
		if quant {
			return 1.0
		}
		return 0.2
	case "Softmax":
		return 1.2
	default:
		return 0.3
	}
}

// nsPerByte returns the data-movement coefficient (Pad, Reshape, Quantize).
func (p *Profile) nsPerByte(op graph.OpType, kind ops.ComputeKind, resolver string) float64 {
	class := op.LayerClass()
	ref := resolver == "reference"
	switch class {
	case "Pad":
		if ref {
			return 6.0
		}
		if kind == ops.KindQuant {
			return 1.9
		}
		return 0.16
	case "Quantize":
		return 0.5
	default:
		return 0.05
	}
}

// costScale maps the mini models onto full-size model cost: the zoo's
// MobileNet-v2-mini performs ~1/500th the MACs of the real MobileNet-v2, so
// all coefficients are scaled so the simulated totals land in the ranges the
// paper reports for the full models (Table 2/4). Only ratios between
// configurations carry meaning; this constant sets the absolute frame.
const costScale = 500.0

// NodeLatency implements interp.LatencyModel. The cost's backend terms
// refine the projection: the per-MAC coefficient is scaled by the kernel
// backend's TimeFactor and panel-packing traffic is billed at the
// data-movement rate, so switching -kernel changes modeled latency the same
// direction it changes measured latency. A zero-value cost (TimeFactor 1,
// PackBytes 0) reproduces the pre-seam projection bit for bit.
func (p *Profile) NodeLatency(op graph.OpType, kind ops.ComputeKind, resolver string, cost ops.Cost) time.Duration {
	base := 2500.0 // fixed dispatch overhead per node, ns
	ns := base + costScale*(p.nsPerMAC(op, kind, resolver)*cost.TimeFactor()*float64(cost.MACs)+
		p.nsPerByte(op, kind, resolver)*float64(cost.Bytes+cost.PackBytes))
	return time.Duration(ns * p.speed)
}

// ModeledThroughput returns a relative frames-per-second weight for the
// profile — the fleet scheduler's Weighted shard policy sizes device shards
// with it. The weight derives from the latency model's dominant coefficient
// (optimized float conv — the evaluation's workloads are conv-heavy) and
// the profile's speed scale, so a GPU profile weighs several times a CPU
// profile and the x86 emulator a fraction of one. Only ratios between
// profiles carry meaning.
func (p *Profile) ModeledThroughput() float64 {
	conv := p.nsPerMAC(graph.OpConv2D, ops.KindFloat, "optimized")
	if conv <= 0 {
		conv = 0.1
	}
	return 1 / (conv * p.speed)
}

// PerLayerLoggingLatency models the cost of writing per-layer logs of the
// given size on-device (the dominant term of the Table 3/5 offline
// validation passes).
func (p *Profile) PerLayerLoggingLatency(logBytes int) time.Duration {
	return time.Duration(p.PerLayerLogNsPerByte * float64(logBytes) * p.speed)
}

func (p *Profile) String() string { return p.Name }

// OrientationSensor simulates the device orientation peripheral: it reports
// the capture rotation in degrees, the sensor telemetry the orientation
// assertion consumes.
type OrientationSensor struct {
	Degrees int
}

// Read returns the current orientation in degrees.
func (s *OrientationSensor) Read() float64 { return float64(s.Degrees) }

// Profiles returns all built-in device profiles.
func Profiles() []*Profile {
	return []*Profile{Pixel4(), Pixel4GPU(), Pixel3(), Pixel3GPU(), EmulatorX86()}
}

// ByName looks up a built-in profile.
func ByName(name string) (*Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("device: unknown profile %q", name)
}
