package device

import (
	"testing"

	"mlexray/internal/graph"
	"mlexray/internal/ops"
)

func convCost() ops.Cost  { return ops.Cost{MACs: 100_000, Bytes: 50_000} }
func dconvCost() ops.Cost { return ops.Cost{MACs: 30_000, Bytes: 60_000} }

func TestProfileLookup(t *testing.T) {
	for _, name := range []string{"Pixel4", "Pixel4-GPU", "Pixel3", "Pixel3-GPU", "Emulator-x86"} {
		p, err := ByName(name)
		if err != nil || p.Name != name {
			t.Errorf("ByName(%q) = %v, %v", name, p, err)
		}
	}
	if _, err := ByName("iPhone"); err == nil {
		t.Error("ByName accepted unknown profile")
	}
	if len(Profiles()) != 5 {
		t.Errorf("%d profiles", len(Profiles()))
	}
}

func TestTable4RatiosHold(t *testing.T) {
	p4 := Pixel4()
	lat := func(op graph.OpType, kind ops.ComputeKind, resolver string, c ops.Cost) float64 {
		return float64(p4.NodeLatency(op, kind, resolver, c))
	}
	// (a) quantized conv slower than float conv on the optimized path.
	if lat(graph.OpConv2D, ops.KindQuant, "optimized", convCost()) <= lat(graph.OpConv2D, ops.KindFloat, "optimized", convCost()) {
		t.Error("quant conv should be slower than float conv")
	}
	// (b) quantized depthwise faster than float depthwise.
	if lat(graph.OpDepthwiseConv2D, ops.KindQuant, "optimized", dconvCost()) >= lat(graph.OpDepthwiseConv2D, ops.KindFloat, "optimized", dconvCost()) {
		t.Error("quant depthwise should be faster than float depthwise")
	}
	// (c) reference kernels are orders of magnitude slower.
	ratio := lat(graph.OpConv2D, ops.KindQuant, "reference", convCost()) /
		lat(graph.OpConv2D, ops.KindQuant, "optimized", convCost())
	if ratio < 100 {
		t.Errorf("reference/optimized conv ratio = %.0f, want >= 100", ratio)
	}
	// (d) float depthwise is ~8x heavier per MAC than float conv.
	convPerMAC := lat(graph.OpConv2D, ops.KindFloat, "optimized", convCost()) / 100_000
	dconvPerMAC := lat(graph.OpDepthwiseConv2D, ops.KindFloat, "optimized", ops.Cost{MACs: 100_000}) / 100_000
	if dconvPerMAC < 4*convPerMAC {
		t.Errorf("depthwise per-MAC (%.2f) should dwarf conv per-MAC (%.2f)", dconvPerMAC, convPerMAC)
	}
}

func TestEmulatorShape(t *testing.T) {
	p4 := Pixel4()
	emu := EmulatorX86()
	c := convCost()
	convP4 := float64(p4.NodeLatency(graph.OpConv2D, ops.KindFloat, "optimized", c))
	convEmu := float64(emu.NodeLatency(graph.OpConv2D, ops.KindFloat, "optimized", c))
	if convEmu < 20*convP4 {
		t.Errorf("emulator conv should be tens of times slower (%.0f vs %.0f)", convEmu, convP4)
	}
	d := ops.Cost{MACs: 100_000}
	dcP4 := float64(p4.NodeLatency(graph.OpDepthwiseConv2D, ops.KindFloat, "optimized", d))
	dcEmu := float64(emu.NodeLatency(graph.OpDepthwiseConv2D, ops.KindFloat, "optimized", d))
	if dcEmu > 3*dcP4 {
		t.Errorf("emulator depthwise should be comparable (%.0f vs %.0f)", dcEmu, dcP4)
	}
}

func TestGPUAndPixel3Scaling(t *testing.T) {
	c := convCost()
	p4 := float64(Pixel4().NodeLatency(graph.OpConv2D, ops.KindFloat, "optimized", c))
	gpu := float64(Pixel4GPU().NodeLatency(graph.OpConv2D, ops.KindFloat, "optimized", c))
	if gpu >= p4 {
		t.Error("GPU should be faster than CPU on float conv")
	}
	p3 := float64(Pixel3().NodeLatency(graph.OpConv2D, ops.KindFloat, "optimized", c))
	if p3 <= p4 {
		t.Error("Pixel 3 should be slower than Pixel 4")
	}
}

func TestLoggingLatencyLinearInBytes(t *testing.T) {
	p := Pixel4()
	a := p.PerLayerLoggingLatency(1 << 20)
	b := p.PerLayerLoggingLatency(2 << 20)
	if b <= a {
		t.Error("logging latency should grow with bytes")
	}
	if p.String() != "Pixel4" {
		t.Error("String")
	}
}

func TestOrientationSensor(t *testing.T) {
	s := OrientationSensor{Degrees: 90}
	if s.Read() != 90 {
		t.Error("sensor read")
	}
}

// TestModeledThroughputOrdering pins the fleet-sharding weight: GPU
// profiles model more throughput than their CPU hosts, the Pixel 3 trails
// the Pixel 4, and the x86 emulator (no ARM conv paths) trails everything.
func TestModeledThroughputOrdering(t *testing.T) {
	p4, p3 := Pixel4().ModeledThroughput(), Pixel3().ModeledThroughput()
	gpu := Pixel4GPU().ModeledThroughput()
	emu := EmulatorX86().ModeledThroughput()
	if !(gpu > p4 && p4 > p3 && p3 > emu) {
		t.Errorf("throughput ordering gpu=%.2f p4=%.2f p3=%.2f emu=%.2f; want gpu > p4 > p3 > emu", gpu, p4, p3, emu)
	}
	if emu <= 0 {
		t.Errorf("emulator throughput %.3f must stay positive", emu)
	}
}
