// Package obs is the serving tier's self-telemetry layer: the paper's
// "you cannot debug what you cannot observe" thesis turned on our own
// collector stack. It provides three dependency-free pillars:
//
//   - Metrics: atomic counters, gauges and fixed log-bucketed histograms
//     registered in a Registry and rendered in Prometheus text exposition
//     format (Registry.WritePrometheus / Registry.Handler, mounted at
//     GET /metrics by exrayd and exraygw). The hot-path operations —
//     Counter.Add, Gauge.Set, Histogram.Observe — are single atomic
//     updates: zero allocations, no locks, safe for concurrent use.
//     Every mutator is also nil-receiver safe, so instrumented code needs
//     no "is telemetry on?" conditionals: a disabled metric is a nil
//     pointer and the call is a no-op.
//
//   - Tracing (trace.go): a request-scoped trace ID minted by the upload
//     client (X-MLEXray-Trace), propagated gateway → shard → WAL, with
//     per-hop Spans recorded into a bounded in-process ring buffer dumped
//     at GET /debug/trace — one slow chunk can be followed across tiers.
//
//   - Profiling (debug.go): an opt-in debug mux bundling net/http/pprof,
//     runtime gauges (goroutines, heap, GC) and the two endpoints above,
//     served on a separate -debug-addr listener by the daemons.
//
// The histogram bucket scheme is shared: LatencyBounds is the one
// log-spaced (1-2-5 per decade) bound set used by the ingest and gateway
// latency histograms and by the storm harness's time-windowed p50/p99
// summaries, so client- and server-side latency views bucket identically.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one metric dimension, rendered as key="value". Labels
// distinguish series within a family (e.g. responses by status, proxy
// latency by shard) and are fixed at registration: the hot path never
// formats label strings.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing metric. The zero value is ready to
// use; a nil Counter is a no-op (telemetry disabled).
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (negative deltas are a caller bug; they are not checked on the
// hot path).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on a nil Counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable instantaneous value. Nil-safe like Counter.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add moves the gauge by n.
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current value (0 on a nil Gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bound distribution: observations land in the first
// bucket whose upper bound is >= the value (cumulative "le" semantics in
// the exposition), with one extra overflow bucket for +Inf. Observe is a
// binary search plus two atomic updates — zero allocations, lock-free.
// A nil Histogram is a no-op.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	sum    atomic.Uint64  // float64 bits, CAS-accumulated
}

// newHistogram builds a histogram over sorted, strictly increasing bounds.
func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// NewHistogram builds a standalone histogram (no registry) over sorted,
// strictly increasing bucket bounds — for in-process summaries like the
// storm harness's windowed latency stats, which must bucket identically to
// the server-side exposition histograms.
func NewHistogram(bounds []float64) *Histogram { return newHistogram(bounds) }

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Inline lower-bound search: first bound >= v.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since start — the idiomatic
// latency observation.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// Count returns the total observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Quantile estimates the q'th quantile (0 <= q <= 1) from the bucket
// counts: nearest-rank over the cumulative distribution with linear
// interpolation inside the winning bucket. An exact bound is returned
// exactly (no float drift) when the rank lands on a bucket's upper edge;
// observations in the +Inf overflow bucket clamp to the last finite bound.
// Returns 0 on an empty (or nil) histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.Count()
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum int64
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			cum += n
			continue
		}
		if cum+n >= rank {
			upper := h.bounds[len(h.bounds)-1]
			if i < len(h.bounds) {
				upper = h.bounds[i]
			}
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			}
			if i >= len(h.bounds) {
				return upper // +Inf bucket clamps to the last finite bound
			}
			frac := float64(rank-cum) / float64(n)
			if frac >= 1 {
				return upper
			}
			return lower + (upper-lower)*frac
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}

// latencyBounds is the shared latency bucket scheme: 1-2-5 per decade from
// 10µs to 10s, in seconds. Wide enough for a sub-100µs WAL fsync and a
// multi-second retry stall alike, and coarse enough that a histogram is 20
// atomics, not a quantile sketch.
var latencyBounds = []float64{
	0.00001, 0.00002, 0.00005,
	0.0001, 0.0002, 0.0005,
	0.001, 0.002, 0.005,
	0.01, 0.02, 0.05,
	0.1, 0.2, 0.5,
	1, 2, 5,
	10,
}

// LatencyBounds returns the shared log-spaced latency bucket bounds
// (seconds) used by every latency histogram in the system — the ingest and
// gateway request histograms, the WAL append/fsync histograms, and the
// storm harness's windowed p50/p99 summaries. Callers get a copy.
func LatencyBounds() []float64 {
	return append([]float64(nil), latencyBounds...)
}

// metricKind tags a family's exposition TYPE line.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindHistogram metricKind = "histogram"
)

// series is one labeled instance within a family.
type series struct {
	labels  string // rendered {k="v",...} or ""
	counter *Counter
	gauge   *Gauge
	gaugeFn func() float64
	hist    *Histogram
}

// family groups the series sharing one metric name.
type family struct {
	name   string
	help   string
	kind   metricKind
	series []*series
	index  map[string]*series
}

// Registry holds a process's (or one server instance's) metric families and
// renders them in Prometheus text exposition format. Registration takes a
// lock; the returned Counter/Gauge/Histogram pointers are then lock-free on
// the hot path, so callers register once at construction and hold the
// pointers. A nil Registry returns nil instruments from every getter —
// telemetry off, all mutators no-ops.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// labelString renders labels in the given order; empty labels render "".
func labelString(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// getFamily returns (creating if needed) the named family; a kind mismatch
// returns nil (the caller then hands back a detached no-op instrument
// rather than corrupting the exposition).
func (r *Registry) getFamily(name, help string, kind metricKind) *family {
	if f, ok := r.byName[name]; ok {
		if f.kind != kind {
			return nil
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind, index: make(map[string]*series)}
	r.byName[name] = f
	r.families = append(r.families, f)
	return f
}

// Counter returns the named counter series, registering it on first use.
// Repeat calls with the same name and labels return the same Counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, help, kindCounter)
	if f == nil {
		return new(Counter)
	}
	key := labelString(labels)
	if s, ok := f.index[key]; ok {
		return s.counter
	}
	s := &series{labels: key, counter: new(Counter)}
	f.index[key] = s
	f.series = append(f.series, s)
	return s.counter
}

// Gauge returns the named gauge series, registering it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, help, kindGauge)
	if f == nil {
		return new(Gauge)
	}
	key := labelString(labels)
	if s, ok := f.index[key]; ok {
		return s.gauge
	}
	s := &series{labels: key, gauge: new(Gauge)}
	f.index[key] = s
	f.series = append(f.series, s)
	return s.gauge
}

// GaugeFunc registers a gauge whose value is computed at scrape time — the
// runtime metrics (goroutines, heap) use this. Repeat registrations of the
// same series replace the function.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, help, kindGauge)
	if f == nil {
		return
	}
	key := labelString(labels)
	if s, ok := f.index[key]; ok {
		s.gaugeFn = fn
		return
	}
	s := &series{labels: key, gaugeFn: fn}
	f.index[key] = s
	f.series = append(f.series, s)
}

// Histogram returns the named histogram series, registering it with the
// given bucket bounds on first use (later calls reuse the first bounds).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, help, kindHistogram)
	if f == nil {
		return newHistogram(bounds)
	}
	key := labelString(labels)
	if s, ok := f.index[key]; ok {
		return s.hist
	}
	s := &series{labels: key, hist: newHistogram(bounds)}
	f.index[key] = s
	f.series = append(f.series, s)
	return s.hist
}

// formatValue renders a float the way the exposition expects: integers
// without an exponent, everything else in Go's shortest round-trip form.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every family in Prometheus text exposition format
// (version 0.0.4): families in registration order, series in registration
// order within each family, histograms as cumulative _bucket{le=...} series
// plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	perFam := make([][]*series, len(fams))
	for i, f := range fams {
		perFam[i] = append([]*series(nil), f.series...)
	}
	r.mu.Unlock()

	var b strings.Builder
	for i, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range perFam[i] {
			switch {
			case s.counter != nil:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, s.labels, s.counter.Value())
			case s.gauge != nil:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, s.labels, s.gauge.Value())
			case s.gaugeFn != nil:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, s.labels, formatValue(s.gaugeFn()))
			case s.hist != nil:
				writeHistogram(&b, f.name, s.labels, s.hist)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram renders one histogram series: cumulative buckets, sum,
// count. The le label is appended after any fixed labels.
func writeHistogram(b *strings.Builder, name, labels string, h *Histogram) {
	bucketLabels := func(le string) string {
		if labels == "" {
			return `{le="` + le + `"}`
		}
		return labels[:len(labels)-1] + `,le="` + le + `"}`
	}
	var cum int64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, bucketLabels(formatValue(bound)), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, bucketLabels("+Inf"), cum)
	fmt.Fprintf(b, "%s_sum%s %s\n", name, labels, formatValue(h.Sum()))
	fmt.Fprintf(b, "%s_count%s %d\n", name, labels, cum)
}

// Handler returns the GET /metrics endpoint: the registry rendered as
// Prometheus text exposition.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// ParseText parses a Prometheus text exposition into a flat series→value
// map keyed by the full series name including labels (the inverse of
// WritePrometheus, for scrapers and tests). Comment and blank lines are
// skipped; a malformed line is an error.
func ParseText(data []byte) (map[string]float64, error) {
	out := make(map[string]float64)
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		idx := strings.LastIndexByte(line, ' ')
		if idx <= 0 {
			return nil, fmt.Errorf("obs: exposition line %d: no value separator in %q", ln+1, line)
		}
		v, err := strconv.ParseFloat(line[idx+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("obs: exposition line %d: %w", ln+1, err)
		}
		out[line[:idx]] = v
	}
	return out, nil
}

// SumSeries adds up every parsed series whose name (label-stripped) equals
// name — how a scraper folds one counter across shards or statuses.
func SumSeries(parsed map[string]float64, name string) float64 {
	var sum float64
	for k, v := range parsed {
		base := k
		if i := strings.IndexByte(base, '{'); i >= 0 {
			base = base[:i]
		}
		if base == name {
			sum += v
		}
	}
	return sum
}

// MergeParsed folds src's series into dst by addition — summing counters
// (and histogram buckets) across several scraped endpoints. Gauges sum too;
// for the per-shard views this is the fleet total.
func MergeParsed(dst, src map[string]float64) {
	for k, v := range src {
		dst[k] += v
	}
}

// SortedSeries returns parsed's keys sorted — deterministic iteration for
// reports.
func SortedSeries(parsed map[string]float64) []string {
	keys := make([]string, 0, len(parsed))
	for k := range parsed {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
