package obs

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"
)

// TestTraceRingEviction pins the bounded-buffer contract: oldest-first
// ordering, overwrite once full, filter by trace ID.
func TestTraceRingEviction(t *testing.T) {
	ring := NewTraceRing(3)
	for i, id := range []string{"a", "b", "c", "d"} {
		ring.Record(Span{Trace: id, StartUnixNs: int64(i)})
	}
	got := ring.Spans("")
	if len(got) != 3 {
		t.Fatalf("len = %d, want 3", len(got))
	}
	for i, want := range []string{"b", "c", "d"} {
		if got[i].Trace != want {
			t.Errorf("span[%d] = %q, want %q", i, got[i].Trace, want)
		}
	}
	if f := ring.Spans("c"); len(f) != 1 || f[0].Trace != "c" {
		t.Errorf("filter = %+v", f)
	}
	if f := ring.Spans("nope"); len(f) != 0 {
		t.Errorf("missing-trace filter = %+v", f)
	}
}

// TestTraceRingPartial covers the not-yet-full ring.
func TestTraceRingPartial(t *testing.T) {
	ring := NewTraceRing(8)
	ring.RecordSince("t", "ingest", "devA", 200, time.Now().Add(-time.Millisecond))
	got := ring.Spans("")
	if len(got) != 1 {
		t.Fatalf("len = %d, want 1", len(got))
	}
	s := got[0]
	if s.Hop != "ingest" || s.Detail != "devA" || s.Status != 200 {
		t.Errorf("span = %+v", s)
	}
	if s.DurationNs <= 0 || s.StartUnixNs <= 0 {
		t.Errorf("timing not recorded: %+v", s)
	}
	// Empty trace IDs are dropped — untraced requests cost nothing.
	ring.RecordSince("", "ingest", "", 200, time.Now())
	if len(ring.Spans("")) != 1 {
		t.Error("RecordSince recorded a span with no trace ID")
	}
}

// TestTraceHandler pins the /debug/trace JSON dump and its ?trace filter.
func TestTraceHandler(t *testing.T) {
	ring := NewTraceRing(4)
	ring.Record(Span{Trace: "t1", Hop: "gateway", Status: 200})
	ring.Record(Span{Trace: "t2", Hop: "ingest", Status: 409})

	rec := httptest.NewRecorder()
	ring.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace?trace=t2", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q", ct)
	}
	var spans []Span
	if err := json.Unmarshal(rec.Body.Bytes(), &spans); err != nil {
		t.Fatalf("dump not JSON: %v", err)
	}
	if len(spans) != 1 || spans[0].Trace != "t2" || spans[0].Hop != "ingest" {
		t.Errorf("spans = %+v", spans)
	}

	rec = httptest.NewRecorder()
	NewTraceRing(1).Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace", nil))
	if body := rec.Body.String(); body != "[]\n" {
		t.Errorf("empty dump = %q, want []", body)
	}
}
