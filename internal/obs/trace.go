package obs

import (
	"encoding/json"
	"net/http"
	"sync"
	"time"
)

// TraceHeader is the cross-tier request-trace header. The upload client
// (RemoteSink) mints one ID per chunk POST; the gateway and shard echo it
// into their spans and forward it downstream, so one slow chunk can be
// followed client → gateway → shard → WAL from a single /debug/trace dump.
const TraceHeader = "X-MLEXray-Trace"

// Span is one hop's view of a traced request.
type Span struct {
	Trace       string `json:"trace"`            // trace ID from TraceHeader
	Hop         string `json:"hop"`              // "gateway", "ingest", "wal", ...
	Detail      string `json:"detail,omitempty"` // hop-specific context (shard name, device, ...)
	Status      int    `json:"status,omitempty"` // HTTP status where applicable
	StartUnixNs int64  `json:"start_unix_ns"`    // wall-clock start
	DurationNs  int64  `json:"duration_ns"`      // hop latency
}

// DefaultTraceCapacity bounds the in-process span ring when the caller does
// not choose a size.
const DefaultTraceCapacity = 512

// TraceRing is a bounded in-process span buffer: Record overwrites the
// oldest span once full, so tracing is always on, never grows, and the
// /debug/trace dump shows the most recent window. Nil-safe like the
// metric types: a nil ring drops spans for free.
type TraceRing struct {
	mu    sync.Mutex
	spans []Span
	next  int
	full  bool
}

// NewTraceRing builds a ring holding up to capacity spans
// (DefaultTraceCapacity if capacity <= 0).
func NewTraceRing(capacity int) *TraceRing {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &TraceRing{spans: make([]Span, capacity)}
}

// Record appends a span, evicting the oldest when full.
func (t *TraceRing) Record(s Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans[t.next] = s
	t.next++
	if t.next == len(t.spans) {
		t.next = 0
		t.full = true
	}
	t.mu.Unlock()
}

// RecordSince records a span for a hop that started at start and just
// finished — the common instrumentation shape.
func (t *TraceRing) RecordSince(trace, hop, detail string, status int, start time.Time) {
	if t == nil || trace == "" {
		return
	}
	t.Record(Span{
		Trace:       trace,
		Hop:         hop,
		Detail:      detail,
		Status:      status,
		StartUnixNs: start.UnixNano(),
		DurationNs:  time.Since(start).Nanoseconds(),
	})
}

// Spans returns the buffered spans oldest-first; when trace is non-empty
// only spans with that trace ID are returned.
func (t *TraceRing) Spans(trace string) []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var ordered []Span
	if t.full {
		ordered = append(ordered, t.spans[t.next:]...)
	}
	ordered = append(ordered, t.spans[:t.next]...)
	if trace == "" {
		return ordered
	}
	out := ordered[:0]
	for _, s := range ordered {
		if s.Trace == trace {
			out = append(out, s)
		}
	}
	return out
}

// Handler returns the GET /debug/trace endpoint: the span buffer as a JSON
// array, optionally filtered with ?trace=ID.
func (t *TraceRing) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		spans := t.Spans(req.URL.Query().Get("trace"))
		if spans == nil {
			spans = []Span{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(spans)
	})
}
