package obs

import (
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync"
	"time"
)

// DebugMux bundles the opt-in debug surface served on a daemon's
// -debug-addr listener: /metrics (when reg != nil), /debug/trace (when
// ring != nil), and the standard net/http/pprof endpoints. pprof is only
// reachable through this mux — the ingest listener never exposes it.
func DebugMux(reg *Registry, ring *TraceRing) *http.ServeMux {
	mux := http.NewServeMux()
	if reg != nil {
		mux.Handle("GET /metrics", reg.Handler())
	}
	if ring != nil {
		mux.Handle("GET /debug/trace", ring.Handler())
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// memStatsCache amortizes runtime.ReadMemStats (a stop-the-world-ish call)
// across the several heap gauges sampled in one scrape.
type memStatsCache struct {
	mu  sync.Mutex
	at  time.Time
	m   runtime.MemStats
	ttl time.Duration
}

func (c *memStatsCache) get() *runtime.MemStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	if time.Since(c.at) > c.ttl {
		runtime.ReadMemStats(&c.m)
		c.at = time.Now()
	}
	return &c.m
}

// RegisterRuntimeMetrics adds process-health gauges (goroutines, heap
// bytes, GC pauses/cycles) to reg, sampled lazily at scrape time.
func RegisterRuntimeMetrics(reg *Registry) {
	if reg == nil {
		return
	}
	cache := &memStatsCache{ttl: 100 * time.Millisecond}
	reg.GaugeFunc("mlexray_process_goroutines",
		"Live goroutines in the process.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("mlexray_process_heap_alloc_bytes",
		"Bytes of allocated heap objects.",
		func() float64 { return float64(cache.get().HeapAlloc) })
	reg.GaugeFunc("mlexray_process_heap_sys_bytes",
		"Bytes of heap obtained from the OS.",
		func() float64 { return float64(cache.get().HeapSys) })
	reg.GaugeFunc("mlexray_process_gc_pause_seconds_total",
		"Cumulative GC stop-the-world pause time in seconds.",
		func() float64 { return float64(cache.get().PauseTotalNs) / 1e9 })
	reg.GaugeFunc("mlexray_process_gc_cycles_total",
		"Completed GC cycles.",
		func() float64 { return float64(cache.get().NumGC) })
}
