package obs

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestWritePrometheusGolden pins the exposition format byte-for-byte:
// HELP/TYPE comments, registration ordering, label rendering, cumulative
// histogram buckets with the le label appended after fixed labels, _sum
// and _count lines. Scrapers (and the smoke script's greps) depend on
// this exact shape.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("mlexray_ingest_chunks_total", "Chunks applied.")
	c.Add(3)
	r.Counter("mlexray_ingest_responses_total", "Responses by status.", L("status", "200")).Add(7)
	r.Counter("mlexray_ingest_responses_total", "Responses by status.", L("status", "429")).Inc()
	g := r.Gauge("mlexray_ingest_sessions_live", "Live sessions.")
	g.Set(2)
	h := r.Histogram("mlexray_wal_fsync_seconds", "WAL fsync latency.", []float64{0.001, 0.01, 0.1})
	h.Observe(0.0005)
	h.Observe(0.002)
	h.Observe(0.002)
	h.Observe(5) // overflow bucket

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	want := `# HELP mlexray_ingest_chunks_total Chunks applied.
# TYPE mlexray_ingest_chunks_total counter
mlexray_ingest_chunks_total 3
# HELP mlexray_ingest_responses_total Responses by status.
# TYPE mlexray_ingest_responses_total counter
mlexray_ingest_responses_total{status="200"} 7
mlexray_ingest_responses_total{status="429"} 1
# HELP mlexray_ingest_sessions_live Live sessions.
# TYPE mlexray_ingest_sessions_live gauge
mlexray_ingest_sessions_live 2
# HELP mlexray_wal_fsync_seconds WAL fsync latency.
# TYPE mlexray_wal_fsync_seconds histogram
mlexray_wal_fsync_seconds_bucket{le="0.001"} 1
mlexray_wal_fsync_seconds_bucket{le="0.01"} 3
mlexray_wal_fsync_seconds_bucket{le="0.1"} 3
mlexray_wal_fsync_seconds_bucket{le="+Inf"} 4
mlexray_wal_fsync_seconds_sum 5.0045
mlexray_wal_fsync_seconds_count 4
`
	if b.String() != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

// TestHistogramLabelLe pins le placement after fixed labels — per-shard
// proxy histograms render {shard="s0",le="..."}.
func TestHistogramLabelLe(t *testing.T) {
	r := NewRegistry()
	r.Histogram("proxy_seconds", "h", []float64{1}, L("shard", "s0")).Observe(0.5)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `proxy_seconds_bucket{shard="s0",le="1"} 1`) {
		t.Errorf("per-shard bucket label wrong:\n%s", b.String())
	}
	if !strings.Contains(b.String(), `proxy_seconds_sum{shard="s0"} 0.5`) {
		t.Errorf("per-shard sum label wrong:\n%s", b.String())
	}
}

// TestGetOrCreateIdempotent proves repeat registration returns the same
// instrument, so instrumented code can re-resolve by name without
// double-counting.
func TestGetOrCreateIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c", "h")
	b := r.Counter("c", "h")
	if a != b {
		t.Fatal("same-name counters are distinct instances")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("counter identity broken")
	}
	h1 := r.Histogram("h", "h", []float64{1, 2})
	h2 := r.Histogram("h", "h", []float64{1, 2})
	if h1 != h2 {
		t.Fatal("same-name histograms are distinct instances")
	}
	g1 := r.Gauge("g", "h", L("k", "v"))
	g2 := r.Gauge("g", "h", L("k", "v"))
	if g1 != g2 {
		t.Fatal("same-series gauges are distinct instances")
	}
}

// TestNilSafety proves telemetry-off is free: nil registry getters return
// nil instruments and every mutator/accessor on nil is a no-op.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("c", "h")
	if c != nil {
		t.Fatal("nil registry returned non-nil counter")
	}
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter value")
	}
	g := r.Gauge("g", "h")
	g.Set(3)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge value")
	}
	h := r.Histogram("h", "h", LatencyBounds())
	h.Observe(1)
	h.ObserveSince(time.Now())
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram accessors")
	}
	r.GaugeFunc("f", "h", func() float64 { return 1 })
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	var ring *TraceRing
	ring.Record(Span{Trace: "x"})
	ring.RecordSince("x", "hop", "", 200, time.Now())
	if ring.Spans("") != nil {
		t.Fatal("nil ring spans")
	}
}

// TestZeroAlloc pins the hot-path contract: Counter.Inc, Gauge.Set and
// Histogram.Observe allocate nothing once registered.
func TestZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "h")
	g := r.Gauge("g", "h")
	h := r.Histogram("h", "h", LatencyBounds())
	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Errorf("Counter.Inc allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(7) }); n != 0 {
		t.Errorf("Gauge.Set allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(0.0042) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %v/op", n)
	}
}

// TestConcurrentUpdates hammers one counter and one histogram from many
// goroutines and checks exact totals — run under -race this also proves
// the hot path is race-clean.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "h")
	h := r.Histogram("h", "h", []float64{0.5, 1.5})
	const workers, per = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(1)
			}
		}()
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Errorf("counter = %d, want %d", c.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*per)
	}
	if h.Sum() != float64(workers*per) {
		t.Errorf("histogram sum = %v, want %v", h.Sum(), workers*per)
	}
}

// TestHistogramQuantile pins the bucketed estimator: exact bucket-edge
// ranks return the bound with no float drift, interior ranks interpolate,
// and the overflow bucket clamps to the last finite bound.
func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{0.010, 0.050, 0.100})
	// 9 observations <= 10ms, 1 in (10ms, 50ms].
	for i := 0; i < 9; i++ {
		h.Observe(0.005)
	}
	h.Observe(0.050)
	// p50 rank 5 lands inside the first bucket: interpolate 0..10ms.
	if got := h.Quantile(0.5); math.Abs(got-0.010*5.0/9.0) > 1e-12 {
		t.Errorf("p50 = %v", got)
	}
	// p90 rank 9 is exactly the first bucket's edge: exact bound, no drift.
	if got := h.Quantile(0.9); got != 0.010 {
		t.Errorf("p90 = %v, want exactly 0.010", got)
	}
	// p99 rank 10 fills the second bucket: exact upper bound.
	if got := h.Quantile(0.99); got != 0.050 {
		t.Errorf("p99 = %v, want exactly 0.050", got)
	}
	// Overflow clamps.
	h2 := newHistogram([]float64{1})
	h2.Observe(100)
	if got := h2.Quantile(0.99); got != 1 {
		t.Errorf("overflow p99 = %v, want clamp to 1", got)
	}
	// Empty.
	if got := newHistogram([]float64{1}).Quantile(0.5); got != 0 {
		t.Errorf("empty p50 = %v", got)
	}
}

// TestParseTextRoundTrip proves a scrape of our own exposition recovers
// every series, including histogram buckets keyed with labels.
func TestParseTextRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "h").Add(5)
	r.Gauge("b", "h", L("x", "y")).Set(2)
	r.Histogram("lat", "h", []float64{1, 2}).Observe(1.5)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseText([]byte(b.String()))
	if err != nil {
		t.Fatalf("ParseText: %v", err)
	}
	for k, want := range map[string]float64{
		"a_total":               5,
		`b{x="y"}`:              2,
		`lat_bucket{le="1"}`:    0,
		`lat_bucket{le="2"}`:    1,
		`lat_bucket{le="+Inf"}`: 1,
		"lat_sum":               1.5,
		"lat_count":             1,
	} {
		if parsed[k] != want {
			t.Errorf("parsed[%q] = %v, want %v", k, parsed[k], want)
		}
	}
	if got := SumSeries(parsed, "b"); got != 2 {
		t.Errorf("SumSeries(b) = %v", got)
	}
	dst := map[string]float64{"a_total": 1}
	MergeParsed(dst, parsed)
	if dst["a_total"] != 6 {
		t.Errorf("MergeParsed a_total = %v", dst["a_total"])
	}
	if _, err := ParseText([]byte("garbage-no-value\n")); err == nil {
		t.Error("ParseText accepted malformed line")
	}
}

// TestHandlerContentType pins the scrape endpoint's content type.
func TestHandlerContentType(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "h").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "c_total 1") {
		t.Errorf("body missing counter:\n%s", rec.Body.String())
	}
}

// TestLatencyBoundsShape pins the shared bucket scheme: log-spaced 1-2-5
// per decade, strictly increasing, 10µs..10s, and returned by copy.
func TestLatencyBoundsShape(t *testing.T) {
	b := LatencyBounds()
	if len(b) != 19 {
		t.Fatalf("len = %d, want 19", len(b))
	}
	if b[0] != 1e-5 || b[len(b)-1] != 10 {
		t.Errorf("range = [%v, %v], want [1e-05, 10]", b[0], b[len(b)-1])
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Errorf("bounds not increasing at %d: %v <= %v", i, b[i], b[i-1])
		}
	}
	b[0] = 999
	if LatencyBounds()[0] != 1e-5 {
		t.Error("LatencyBounds aliases internal slice")
	}
}

// TestRuntimeMetrics smoke-tests the pprof-side gauges.
func TestRuntimeMetrics(t *testing.T) {
	r := NewRegistry()
	RegisterRuntimeMetrics(r)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"mlexray_process_goroutines",
		"mlexray_process_heap_alloc_bytes",
		"mlexray_process_gc_cycles_total",
	} {
		if !strings.Contains(b.String(), name) {
			t.Errorf("runtime metrics missing %s", name)
		}
	}
	parsed, err := ParseText([]byte(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if parsed["mlexray_process_goroutines"] < 1 {
		t.Errorf("goroutines gauge = %v", parsed["mlexray_process_goroutines"])
	}
}

// TestDebugMux proves the -debug-addr surface mounts metrics, traces and
// pprof on one mux.
func TestDebugMux(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "h").Inc()
	ring := NewTraceRing(4)
	ring.Record(Span{Trace: "t1", Hop: "ingest"})
	mux := DebugMux(r, ring)
	for path, want := range map[string]string{
		"/metrics":      "c_total 1",
		"/debug/trace":  `"t1"`,
		"/debug/pprof/": "profiles",
	} {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != 200 {
			t.Errorf("GET %s = %d", path, rec.Code)
			continue
		}
		if !strings.Contains(rec.Body.String(), want) {
			t.Errorf("GET %s body missing %q:\n%.200s", path, want, rec.Body.String())
		}
	}
}
