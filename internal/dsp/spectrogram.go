package dsp

import (
	"fmt"
	"math"

	"mlexray/internal/tensor"
)

// SpecNorm names a spectrogram normalization convention. The paper evaluates
// two speech models "from different training pipelines" whose spectrogram
// normalization conventions differ; deploying one model with the other's
// convention is the Figure 4c bug.
type SpecNorm int

const (
	// SpecNormLogGlobal: log1p magnitudes scaled by a fixed global constant
	// (the tf simple_audio tutorial style).
	SpecNormLogGlobal SpecNorm = iota
	// SpecNormPerUtterance: per-utterance mean/variance normalization (the
	// production KWS style).
	SpecNormPerUtterance
	// SpecNormNone: raw magnitudes, the classic "forgot to normalize" bug.
	SpecNormNone
)

func (s SpecNorm) String() string {
	switch s {
	case SpecNormLogGlobal:
		return "log-global"
	case SpecNormPerUtterance:
		return "per-utterance"
	case SpecNormNone:
		return "none"
	default:
		return fmt.Sprintf("specnorm(%d)", int(s))
	}
}

// SpectrogramConfig controls STFT feature extraction.
type SpectrogramConfig struct {
	FrameLen int // samples per frame; must be a power of two
	FrameHop int // hop between frames
	Norm     SpecNorm
}

// DefaultSpectrogram is the configuration both synthetic KWS training
// pipelines share for the STFT itself (they differ only in Norm).
var DefaultSpectrogram = SpectrogramConfig{FrameLen: 64, FrameHop: 32, Norm: SpecNormLogGlobal}

// Spectrogram converts a waveform into a [1, frames, bins, 1] float tensor:
// a Hann-windowed STFT magnitude image with the configured normalization.
// It is the feature-generation preprocessing stage of the speech pipelines.
func Spectrogram(wave []float64, cfg SpectrogramConfig) (*tensor.Tensor, error) {
	if cfg.FrameLen <= 0 || cfg.FrameLen&(cfg.FrameLen-1) != 0 {
		return nil, fmt.Errorf("dsp: frame length %d not a power of two", cfg.FrameLen)
	}
	if cfg.FrameHop <= 0 {
		return nil, fmt.Errorf("dsp: frame hop %d", cfg.FrameHop)
	}
	if len(wave) < cfg.FrameLen {
		return nil, fmt.Errorf("dsp: waveform of %d samples shorter than frame %d", len(wave), cfg.FrameLen)
	}
	frames := 1 + (len(wave)-cfg.FrameLen)/cfg.FrameHop
	bins := cfg.FrameLen/2 + 1
	win := HannWindow(cfg.FrameLen)
	out := tensor.New(tensor.F32, 1, frames, bins, 1)
	buf := make([]float64, cfg.FrameLen)
	for f := 0; f < frames; f++ {
		off := f * cfg.FrameHop
		for i := 0; i < cfg.FrameLen; i++ {
			buf[i] = wave[off+i] * win[i]
		}
		mag, err := RFFTMagnitude(buf)
		if err != nil {
			return nil, err
		}
		for b := 0; b < bins; b++ {
			out.F[f*bins+b] = float32(mag[b])
		}
	}
	normalizeSpectrogram(out, cfg.Norm)
	return out, nil
}

func normalizeSpectrogram(t *tensor.Tensor, norm SpecNorm) {
	switch norm {
	case SpecNormNone:
		return
	case SpecNormLogGlobal:
		// log1p compresses dynamic range; the /4 constant maps typical tone
		// magnitudes into roughly [0, 1].
		for i, v := range t.F {
			t.F[i] = float32(math.Log1p(float64(v)) / 4.0)
		}
	case SpecNormPerUtterance:
		s := tensor.ComputeStats(t)
		std := math.Sqrt(maxf(s.RMS*s.RMS-s.Mean*s.Mean, 1e-12))
		for i, v := range t.F {
			t.F[i] = float32((float64(v) - s.Mean) / std)
		}
	}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// SynthTone synthesizes a test waveform: the sum of sinusoids at the given
// normalized frequencies (cycles/sample) with the given amplitudes. The
// synthetic speech-commands dataset builds keyword signatures from these.
func SynthTone(n int, freqs, amps []float64, phase float64) []float64 {
	if len(freqs) != len(amps) {
		panic("dsp: freqs/amps length mismatch")
	}
	w := make([]float64, n)
	for i := 0; i < n; i++ {
		for k, f := range freqs {
			w[i] += amps[k] * math.Sin(2*math.Pi*f*float64(i)+phase*float64(k+1))
		}
	}
	return w
}

// SynthChirp synthesizes a linear chirp from f0 to f1 (cycles/sample).
func SynthChirp(n int, f0, f1, amp float64) []float64 {
	w := make([]float64, n)
	for i := 0; i < n; i++ {
		t := float64(i)
		f := f0 + (f1-f0)*t/float64(n)
		w[i] = amp * math.Sin(2*math.Pi*f*t)
	}
	return w
}
