// Package dsp is the audio-preprocessing substrate: FFT, windowing and
// log-spectrogram feature extraction. The paper's speech-recognition case
// study (§4.3, Figure 4c) preprocesses waveforms into spectrograms outside
// the model graph, which makes the feature-generation step — in particular
// the spectrogram normalization convention — a deployment-bug surface
// exactly like image preprocessing.
package dsp

import (
	"fmt"
	"math"
	"math/cmplx"
)

// FFT computes the in-order radix-2 Cooley-Tukey FFT of x, whose length
// must be a power of two. The input is not modified.
func FFT(x []complex128) ([]complex128, error) {
	n := len(x)
	if n == 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("dsp: FFT length %d is not a power of two", n)
	}
	out := make([]complex128, n)
	copy(out, x)
	fftInPlace(out, false)
	return out, nil
}

// IFFT computes the inverse FFT (including the 1/N scaling).
func IFFT(x []complex128) ([]complex128, error) {
	n := len(x)
	if n == 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("dsp: IFFT length %d is not a power of two", n)
	}
	out := make([]complex128, n)
	copy(out, x)
	fftInPlace(out, true)
	inv := complex(1/float64(n), 0)
	for i := range out {
		out[i] *= inv
	}
	return out, nil
}

func fftInPlace(a []complex128, inverse bool) {
	n := len(a)
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		ang := 2 * math.Pi / float64(length)
		if !inverse {
			ang = -ang
		}
		wl := cmplx.Rect(1, ang)
		for i := 0; i < n; i += length {
			w := complex(1, 0)
			half := length / 2
			for j := 0; j < half; j++ {
				u := a[i+j]
				v := a[i+j+half] * w
				a[i+j] = u + v
				a[i+j+half] = u - v
				w *= wl
			}
		}
	}
}

// RFFTMagnitude returns the magnitude of the first n/2+1 FFT bins of a real
// signal, the usual spectrogram column.
func RFFTMagnitude(x []float64) ([]float64, error) {
	c := make([]complex128, len(x))
	for i, v := range x {
		c[i] = complex(v, 0)
	}
	spec, err := FFT(c)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(x)/2+1)
	for i := range out {
		out[i] = cmplx.Abs(spec[i])
	}
	return out, nil
}

// HannWindow returns the n-point periodic Hann window.
func HannWindow(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 0.5 * (1 - math.Cos(2*math.Pi*float64(i)/float64(n)))
	}
	return w
}
