package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"mlexray/internal/tensor"
)

func TestFFTRejectsNonPowerOfTwo(t *testing.T) {
	if _, err := FFT(make([]complex128, 6)); err == nil {
		t.Error("FFT accepted length 6")
	}
	if _, err := FFT(nil); err == nil {
		t.Error("FFT accepted empty input")
	}
	if _, err := IFFT(make([]complex128, 3)); err == nil {
		t.Error("IFFT accepted length 3")
	}
}

func TestFFTImpulse(t *testing.T) {
	x := make([]complex128, 8)
	x[0] = 1
	spec, err := FFT(x)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range spec {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Errorf("bin %d = %v, want 1", i, v)
		}
	}
}

func TestFFTSingleTone(t *testing.T) {
	const n = 64
	const bin = 5
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(math.Cos(2*math.Pi*bin*float64(i)/n), 0)
	}
	spec, err := FFT(x)
	if err != nil {
		t.Fatal(err)
	}
	// A real cosine concentrates energy in bins +bin and n-bin, each n/2.
	for i, v := range spec {
		mag := cmplx.Abs(v)
		if i == bin || i == n-bin {
			if math.Abs(mag-n/2) > 1e-9 {
				t.Errorf("bin %d mag = %v, want %v", i, mag, float64(n)/2)
			}
		} else if mag > 1e-9 {
			t.Errorf("leakage in bin %d: %v", i, mag)
		}
	}
}

// Property: IFFT(FFT(x)) == x.
func TestFFTRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (3 + rng.Intn(4)) // 8..64
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		spec, err := FFT(x)
		if err != nil {
			return false
		}
		back, err := IFFT(spec)
		if err != nil {
			return false
		}
		for i := range x {
			if cmplx.Abs(x[i]-back[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: Parseval — sum |x|^2 == (1/N) sum |X|^2.
func TestFFTParsevalProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 32
		x := make([]complex128, n)
		var timeE float64
		for i := range x {
			x[i] = complex(rng.NormFloat64(), 0)
			timeE += real(x[i]) * real(x[i])
		}
		spec, err := FFT(x)
		if err != nil {
			return false
		}
		var freqE float64
		for _, v := range spec {
			freqE += real(v)*real(v) + imag(v)*imag(v)
		}
		return math.Abs(timeE-freqE/n) < 1e-6*math.Max(1, timeE)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: FFT is linear.
func TestFFTLinearityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 16
		a := make([]complex128, n)
		b := make([]complex128, n)
		sum := make([]complex128, n)
		for i := range a {
			a[i] = complex(rng.NormFloat64(), 0)
			b[i] = complex(rng.NormFloat64(), 0)
			sum[i] = a[i] + 2*b[i]
		}
		fa, _ := FFT(a)
		fb, _ := FFT(b)
		fs, _ := FFT(sum)
		for i := range fs {
			if cmplx.Abs(fs[i]-(fa[i]+2*fb[i])) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestHannWindowShape(t *testing.T) {
	w := HannWindow(64)
	if w[0] > 1e-12 {
		t.Errorf("Hann(0) = %v", w[0])
	}
	if math.Abs(w[32]-1) > 1e-12 {
		t.Errorf("Hann(mid) = %v", w[32])
	}
	for _, v := range w {
		if v < 0 || v > 1 {
			t.Fatalf("window value %v outside [0,1]", v)
		}
	}
}

func TestSpectrogramShape(t *testing.T) {
	wave := SynthTone(512, []float64{0.1}, []float64{1}, 0)
	sp, err := Spectrogram(wave, SpectrogramConfig{FrameLen: 64, FrameHop: 32, Norm: SpecNormNone})
	if err != nil {
		t.Fatal(err)
	}
	wantFrames := 1 + (512-64)/32
	if !tensor.SameShape(sp.Shape, []int{1, wantFrames, 33, 1}) {
		t.Errorf("shape = %v, want [1 %d 33 1]", sp.Shape, wantFrames)
	}
}

func TestSpectrogramTonePeaksAtRightBin(t *testing.T) {
	// 0.125 cycles/sample with a 64-sample frame lands in bin 8.
	wave := SynthTone(512, []float64{0.125}, []float64{1}, 0)
	sp, err := Spectrogram(wave, SpectrogramConfig{FrameLen: 64, FrameHop: 32, Norm: SpecNormNone})
	if err != nil {
		t.Fatal(err)
	}
	bins := 33
	frame := sp.F[5*bins : 6*bins] // a middle frame
	best := 0
	for i, v := range frame {
		if v > frame[best] {
			best = i
		}
	}
	if best != 8 {
		t.Errorf("peak bin = %d, want 8", best)
	}
}

func TestSpectrogramErrors(t *testing.T) {
	if _, err := Spectrogram(make([]float64, 10), SpectrogramConfig{FrameLen: 64, FrameHop: 32}); err == nil {
		t.Error("accepted waveform shorter than a frame")
	}
	if _, err := Spectrogram(make([]float64, 128), SpectrogramConfig{FrameLen: 60, FrameHop: 30}); err == nil {
		t.Error("accepted non-power-of-two frame")
	}
	if _, err := Spectrogram(make([]float64, 128), SpectrogramConfig{FrameLen: 64, FrameHop: 0}); err == nil {
		t.Error("accepted zero hop")
	}
}

func TestPerUtteranceNormalization(t *testing.T) {
	wave := SynthTone(512, []float64{0.07, 0.21}, []float64{3, 1}, 0.5)
	sp, err := Spectrogram(wave, SpectrogramConfig{FrameLen: 64, FrameHop: 32, Norm: SpecNormPerUtterance})
	if err != nil {
		t.Fatal(err)
	}
	s := tensor.ComputeStats(sp)
	if math.Abs(s.Mean) > 1e-4 {
		t.Errorf("per-utterance mean = %v, want ~0", s.Mean)
	}
	variance := s.RMS*s.RMS - s.Mean*s.Mean
	if math.Abs(variance-1) > 1e-3 {
		t.Errorf("per-utterance variance = %v, want ~1", variance)
	}
}

func TestNormConventionsDiffer(t *testing.T) {
	wave := SynthChirp(512, 0.05, 0.3, 1)
	a, _ := Spectrogram(wave, SpectrogramConfig{FrameLen: 64, FrameHop: 32, Norm: SpecNormLogGlobal})
	b, _ := Spectrogram(wave, SpectrogramConfig{FrameLen: 64, FrameHop: 32, Norm: SpecNormPerUtterance})
	rmse, err := tensor.RMSE(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if rmse < 0.1 {
		t.Errorf("normalization conventions barely differ (rmse=%v); the Fig 4c bug would be invisible", rmse)
	}
}

func TestSpecNormString(t *testing.T) {
	if SpecNormLogGlobal.String() != "log-global" || SpecNormPerUtterance.String() != "per-utterance" || SpecNormNone.String() != "none" {
		t.Error("SpecNorm.String")
	}
}

func TestSynthChirpBounded(t *testing.T) {
	w := SynthChirp(256, 0.01, 0.4, 0.7)
	for _, v := range w {
		if math.Abs(v) > 0.7+1e-9 {
			t.Fatalf("chirp exceeded amplitude: %v", v)
		}
	}
}
