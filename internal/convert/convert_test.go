package convert

import (
	"math/rand"
	"testing"

	"mlexray/internal/graph"
	"mlexray/internal/interp"
	"mlexray/internal/ops"
	"mlexray/internal/quant"
	"mlexray/internal/tensor"
)

// buildCheckpointCNN constructs a checkpoint-format net with the patterns the
// converter must handle: conv -> BN -> ReLU6, depthwise -> BN -> ReLU,
// residual add -> ReLU, mean, dense, softmax.
func buildCheckpointCNN(t *testing.T, seed int64) *graph.Model {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder("ckpt")
	in := b.Input("input", tensor.F32, 1, 8, 8, 3)

	newBN := func(name string, ch int) []int {
		gamma := tensor.New(tensor.F32, ch)
		tensor.RandUniform(rng, gamma, 0.5, 1.5)
		beta := tensor.New(tensor.F32, ch)
		tensor.RandUniform(rng, beta, -0.2, 0.2)
		mean := tensor.New(tensor.F32, ch)
		tensor.RandUniform(rng, mean, -0.3, 0.3)
		variance := tensor.New(tensor.F32, ch)
		tensor.RandUniform(rng, variance, 0.5, 2)
		return []int{
			b.Const(name+"/gamma", gamma), b.Const(name+"/beta", beta),
			b.Const(name+"/mean", mean), b.Const(name+"/var", variance),
		}
	}

	w1 := tensor.New(tensor.F32, 8, 3, 3, 3)
	tensor.HeInit(rng, w1, 27)
	x := b.Node(graph.OpConv2D, "conv1",
		graph.Attrs{StrideH: 1, StrideW: 1, PadT: 1, PadB: 1, PadL: 1, PadR: 1},
		in, b.Const("conv1/w", w1))
	bn1 := newBN("bn1", 8)
	x = b.Node(graph.OpBatchNorm, "bn1", graph.Attrs{Eps: 1e-5}, x, bn1[0], bn1[1], bn1[2], bn1[3])
	x = b.Node(graph.OpReLU6, "relu1", graph.Attrs{}, x)

	wd := tensor.New(tensor.F32, 1, 3, 3, 8)
	tensor.HeInit(rng, wd, 9)
	y := b.Node(graph.OpDepthwiseConv2D, "dw1",
		graph.Attrs{StrideH: 1, StrideW: 1, PadT: 1, PadB: 1, PadL: 1, PadR: 1, DepthMultiplier: 1},
		x, b.Const("dw1/w", wd))
	bn2 := newBN("bn2", 8)
	y = b.Node(graph.OpBatchNorm, "bn2", graph.Attrs{Eps: 1e-5}, y, bn2[0], bn2[1], bn2[2], bn2[3])
	y = b.Node(graph.OpReLU, "relu2", graph.Attrs{}, y)

	z := b.Node(graph.OpAdd, "res", graph.Attrs{}, x, y)
	z = b.Node(graph.OpReLU, "relu3", graph.Attrs{}, z)
	g := b.Node(graph.OpMean, "gap", graph.Attrs{}, z)

	wf := tensor.New(tensor.F32, 4, 8)
	tensor.HeInit(rng, wf, 8)
	bf := tensor.New(tensor.F32, 4)
	logits := b.Node(graph.OpDense, "fc", graph.Attrs{}, g, b.Const("fc/w", wf), b.Const("fc/b", bf))
	b.RenameTensor(logits, "logits")
	sm := b.Node(graph.OpSoftmax, "softmax", graph.Attrs{Axis: 1}, logits)
	b.Output(sm)
	b.Meta(graph.Meta{Task: "classification", InputH: 8, InputW: 8, InputC: 3, NumClasses: 4, NormLo: -1, NormHi: 1})
	return b.MustFinish()
}

func randInput(seed int64) *tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	in := tensor.New(tensor.F32, 1, 8, 8, 3)
	tensor.RandUniform(rng, in, -1, 1)
	return in
}

func runModel(t *testing.T, m *graph.Model, r *ops.Resolver, in *tensor.Tensor) *tensor.Tensor {
	t.Helper()
	ip, err := interp.New(m, r)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ip.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestOptimizeRemovesBNAndActivations(t *testing.T) {
	ck := buildCheckpointCNN(t, 1)
	mob, err := Optimize(ck)
	if err != nil {
		t.Fatal(err)
	}
	if mob.Format != graph.FormatMobile {
		t.Errorf("format = %v", mob.Format)
	}
	for _, n := range mob.Nodes {
		if n.Op == graph.OpBatchNorm {
			t.Error("BatchNorm survived optimization")
		}
		if n.Op == graph.OpReLU || n.Op == graph.OpReLU6 {
			t.Errorf("unfused activation %q survived", n.Name)
		}
	}
	// conv1 should have gained ReLU6, dw1 ReLU, res ReLU.
	checks := map[string]graph.Activation{"conv1": graph.ActReLU6, "dw1": graph.ActReLU, "res": graph.ActReLU}
	for name, want := range checks {
		ni, err := mob.NodeByName(name)
		if err != nil {
			t.Fatalf("node %q lost: %v", name, err)
		}
		if got := mob.Nodes[ni].Attrs.Activation; got != want {
			t.Errorf("%s activation = %v, want %v", name, got, want)
		}
	}
	// Checkpoint itself must be untouched (Clone semantics).
	if _, err := ck.NodeByName("bn1"); err != nil {
		t.Error("source model was mutated")
	}
}

func TestOptimizePreservesFunction(t *testing.T) {
	ck := buildCheckpointCNN(t, 2)
	mob, err := Optimize(ck)
	if err != nil {
		t.Fatal(err)
	}
	ref := ops.NewReference(ops.Fixed())
	for trial := int64(0); trial < 5; trial++ {
		in := randInput(100 + trial)
		a := runModel(t, ck, ref, in)
		b := runModel(t, mob, ref, in)
		if !tensor.AllClose(a, b, 1e-4, 1e-5) {
			t.Fatalf("trial %d: optimize changed function: %v vs %v", trial, a.F, b.F)
		}
	}
}

func TestOptimizeSkipsSharedActivations(t *testing.T) {
	// When a conv output feeds two consumers, its trailing ReLU must not be
	// fused (that would change the second consumer's input).
	rng := rand.New(rand.NewSource(3))
	b := graph.NewBuilder("shared")
	in := b.Input("input", tensor.F32, 1, 4, 4, 2)
	w := tensor.New(tensor.F32, 2, 1, 1, 2)
	tensor.HeInit(rng, w, 2)
	x := b.Node(graph.OpConv2D, "conv", graph.Attrs{StrideH: 1, StrideW: 1}, in, b.Const("w", w))
	r := b.Node(graph.OpReLU, "relu", graph.Attrs{}, x)
	s := b.Node(graph.OpAdd, "add", graph.Attrs{}, x, r) // second consumer of x
	b.Output(s)
	m := b.MustFinish()
	mob, err := Optimize(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mob.NodeByName("relu"); err != nil {
		t.Error("shared activation was incorrectly fused")
	}
}

func TestQuantizeProducesIntegerGraph(t *testing.T) {
	ck := buildCheckpointCNN(t, 4)
	mob, err := Optimize(ck)
	if err != nil {
		t.Fatal(err)
	}
	calib := []*tensor.Tensor{randInput(200), randInput(201), randInput(202)}
	q, err := Quantize(mob, calib, DefaultQuantOptions())
	if err != nil {
		t.Fatal(err)
	}
	if q.Format != graph.FormatQuant {
		t.Errorf("format = %v", q.Format)
	}
	// Interface stays float.
	if q.Tensors[q.Inputs[0]].DType != tensor.F32 {
		t.Error("input not float")
	}
	if q.Tensors[q.Outputs[0]].DType != tensor.F32 {
		t.Error("output not float")
	}
	// First node quantizes, last dequantizes.
	if q.Nodes[0].Op != graph.OpQuantize {
		t.Errorf("first node = %v", q.Nodes[0].Op)
	}
	if q.Nodes[len(q.Nodes)-1].Op != graph.OpDequantize {
		t.Errorf("last node = %v", q.Nodes[len(q.Nodes)-1].Op)
	}
	// All weights int8 with per-channel params; activations u8 with params.
	for ni := range q.Nodes {
		n := &q.Nodes[ni]
		if isFoldableCompute(n.Op) {
			wi := q.Tensors[n.Inputs[1]]
			if wi.DType != tensor.I8 || wi.Quant == nil {
				t.Errorf("node %q weights: %v", n.Name, wi.DType)
			}
			if !wi.Quant.IsPerChannel() {
				t.Errorf("node %q weights not per-channel", n.Name)
			}
			if len(n.Inputs) >= 3 && q.Tensors[n.Inputs[2]].DType != tensor.I32 {
				t.Errorf("node %q bias not i32", n.Name)
			}
		}
	}
	// Quantized model must run under both resolvers.
	in := randInput(300)
	outRef := runModel(t, q, ops.NewReference(ops.Fixed()), in)
	outOpt := runModel(t, q, ops.NewOptimized(ops.Fixed()), in)
	if !outRef.IsFinite() || !outOpt.IsFinite() {
		t.Error("quantized outputs not finite")
	}
	// Fixed-configuration resolvers agree on quantized graphs.
	if !tensor.AllClose(outRef, outOpt, 0, 1e-6) {
		t.Errorf("fixed resolvers disagree on quant model: %v vs %v", outRef.F, outOpt.F)
	}
}

func TestQuantizedAccuracyNearFloat(t *testing.T) {
	ck := buildCheckpointCNN(t, 5)
	mob, err := Optimize(ck)
	if err != nil {
		t.Fatal(err)
	}
	var calib []*tensor.Tensor
	for i := int64(0); i < 8; i++ {
		calib = append(calib, randInput(400+i))
	}
	q, err := Quantize(mob, calib, DefaultQuantOptions())
	if err != nil {
		t.Fatal(err)
	}
	ref := ops.NewReference(ops.Fixed())
	agree := 0
	const trials = 30
	for i := int64(0); i < trials; i++ {
		in := randInput(500 + i)
		fo := runModel(t, mob, ref, in)
		qo := runModel(t, q, ref, in)
		if fo.ArgMax() == qo.ArgMax() {
			agree++
		}
	}
	if agree < trials*7/10 {
		t.Errorf("quantized model agrees with float on only %d/%d inputs", agree, trials)
	}
}

func TestQuantizeRejectsCheckpoint(t *testing.T) {
	ck := buildCheckpointCNN(t, 6)
	if _, err := Quantize(ck, []*tensor.Tensor{randInput(1)}, DefaultQuantOptions()); err == nil {
		t.Error("Quantize accepted a checkpoint model")
	}
}

func TestCalibrateRequiresData(t *testing.T) {
	ck := buildCheckpointCNN(t, 7)
	mob, _ := Optimize(ck)
	if _, err := Calibrate(mob, nil, DefaultQuantOptions()); err == nil {
		t.Error("Calibrate accepted empty calibration set")
	}
}

func TestPerTensorWeightOption(t *testing.T) {
	ck := buildCheckpointCNN(t, 8)
	mob, _ := Optimize(ck)
	calib := []*tensor.Tensor{randInput(600)}
	opts := DefaultQuantOptions()
	opts.WeightPerChannel = false
	q, err := Quantize(mob, calib, opts)
	if err != nil {
		t.Fatal(err)
	}
	for ni := range q.Nodes {
		n := &q.Nodes[ni]
		if isFoldableCompute(n.Op) {
			if q.Tensors[n.Inputs[1]].Quant.IsPerChannel() {
				t.Errorf("node %q got per-channel params despite per-tensor option", n.Name)
			}
		}
	}
}

func TestDynamicRangeQuantization(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	b := graph.NewBuilder("text")
	ids := b.Input("ids", tensor.I32, 1, 6)
	table := tensor.New(tensor.F32, 20, 8)
	tensor.GlorotInit(rng, table, 20, 8)
	emb := b.Node(graph.OpEmbedding, "emb", graph.Attrs{}, ids, b.Const("table", table))
	flat := b.Node(graph.OpReshape, "flat", graph.Attrs{NewShape: []int{1, 48}}, emb)
	w := tensor.New(tensor.F32, 2, 48)
	tensor.GlorotInit(rng, w, 48, 2)
	bias := tensor.New(tensor.F32, 2)
	logits := b.Node(graph.OpDense, "fc", graph.Attrs{}, flat, b.Const("fc/w", w), b.Const("fc/b", bias))
	sm := b.Node(graph.OpSoftmax, "softmax", graph.Attrs{Axis: 1}, logits)
	b.Output(sm)
	m := b.MustFinish()
	m.Format = graph.FormatMobile

	q, err := QuantizeDynamicRange(m, DefaultQuantOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Table and dense weights are int8; activations stay float.
	tid, _ := q.TensorByName("table")
	if q.Tensors[tid].DType != tensor.I8 {
		t.Error("embedding table not quantized")
	}
	wid, _ := q.TensorByName("fc/w")
	if q.Tensors[wid].DType != tensor.I8 {
		t.Error("dense weights not quantized")
	}
	// Behaviour stays close to float.
	in := tensor.FromInt32([]int32{1, 3, 5, 7, 9, 11}, 1, 6)
	ref := ops.NewReference(ops.Fixed())
	a := runModel(t, m, ref, in)
	bq := runModel(t, q, ref, in)
	if !tensor.AllClose(a, bq, 0.05, 0.05) {
		t.Errorf("dynamic-range output drifted: %v vs %v", a.F, bq.F)
	}
}

// The §2 calibration pitfall end-to-end: an outlier image in the
// representative dataset inflates activation scales; percentile clipping
// recovers the accuracy.
func TestCalibrationOutlierAblation(t *testing.T) {
	ck := buildCheckpointCNN(t, 10)
	mob, _ := Optimize(ck)
	ref := ops.NewReference(ops.Fixed())

	var calib []*tensor.Tensor
	for i := int64(0); i < 6; i++ {
		calib = append(calib, randInput(700+i))
	}
	// One corrupt sample: a normal image with a single sensor-glitch pixel
	// far outside the [-1,1] data distribution. Strict min/max calibration
	// inflates the input scale ~30x; percentile clipping discards it.
	outlier := randInput(799)
	outlier.F[0] = 60
	calibBad := append(append([]*tensor.Tensor{}, calib...), outlier)

	strict := DefaultQuantOptions()
	qBad, err := Quantize(mob, calibBad, strict)
	if err != nil {
		t.Fatal(err)
	}
	clipped := DefaultQuantOptions()
	clipped.ActClipPercentile = 0.001
	qClip, err := Quantize(mob, calibBad, clipped)
	if err != nil {
		t.Fatal(err)
	}

	// Compare drift at the logits tensor (softmax compresses differences
	// away, hiding the damage — itself a lesson in why the paper inspects
	// intermediate layers rather than final outputs).
	logitsDrift := func(q *graph.Model, in, floatLogits *tensor.Tensor) float64 {
		ip, err := interp.New(q, ref)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ip.Run(in); err != nil {
			t.Fatal(err)
		}
		id, err := q.TensorByName("logits")
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := ip.Tensor(id)
		deq := quant.DequantizeTensorU8(raw, q.Tensors[id].Quant)
		e, _ := tensor.RMSE(deq, floatLogits)
		return e
	}
	floatLogitsOf := func(in *tensor.Tensor) *tensor.Tensor {
		ip, err := interp.New(mob, ref)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ip.Run(in); err != nil {
			t.Fatal(err)
		}
		id, err := mob.TensorByName("logits")
		if err != nil {
			t.Fatal(err)
		}
		lt, _ := ip.Tensor(id)
		return lt.Clone()
	}
	var errBad, errClip float64
	const trials = 12
	for i := int64(0); i < trials; i++ {
		in := randInput(800 + i)
		fl := floatLogitsOf(in)
		errBad += logitsDrift(qBad, in, fl)
		errClip += logitsDrift(qClip, in, fl)
	}
	if errClip*1.5 >= errBad {
		t.Errorf("percentile clipping did not clearly help: clipped %v vs strict %v", errClip, errBad)
	}
}
