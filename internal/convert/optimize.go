// Package convert implements the deployment-time model transformations of
// the paper's pipeline (§2 "Model Optimization and Quantization", §3.3):
// checkpoint → mobile (BatchNorm folding, activation fusion, dead-node
// elimination) and mobile → quant (post-training full-integer quantization
// with range calibration, or dynamic-range weight-only quantization).
//
// Every transformation returns a new model; sources are never mutated. Node
// names are preserved so per-layer validation can align tensors across the
// checkpoint, mobile and quantized versions of the same model.
package convert

import (
	"fmt"
	"math"

	"mlexray/internal/graph"
	"mlexray/internal/tensor"
)

// Optimize converts a checkpoint-format model into mobile format: folds
// BatchNorm into the preceding conv/depthwise/dense, fuses trailing
// ReLU/ReLU6 nodes into compute-op attributes, and compacts the graph.
func Optimize(src *graph.Model) (*graph.Model, error) {
	m := src.Clone()
	if err := foldBatchNorms(m); err != nil {
		return nil, err
	}
	if err := fuseActivations(m); err != nil {
		return nil, err
	}
	out, err := compact(m)
	if err != nil {
		return nil, err
	}
	out.Format = graph.FormatMobile
	return out, nil
}

// consumerCount returns, for each tensor id, how many node inputs plus model
// outputs reference it.
func consumerCount(m *graph.Model) []int {
	counts := make([]int, len(m.Tensors))
	for _, n := range m.Nodes {
		for _, id := range n.Inputs {
			counts[id]++
		}
	}
	for _, id := range m.Outputs {
		counts[id]++
	}
	return counts
}

// producerOf maps each tensor id to the index of the node producing it (-1
// for inputs/consts).
func producerOf(m *graph.Model) []int {
	prod := make([]int, len(m.Tensors))
	for i := range prod {
		prod[i] = -1
	}
	for ni, n := range m.Nodes {
		for _, id := range n.Outputs {
			prod[id] = ni
		}
	}
	return prod
}

func isFoldableCompute(op graph.OpType) bool {
	switch op {
	case graph.OpConv2D, graph.OpDepthwiseConv2D, graph.OpDense:
		return true
	}
	return false
}

// foldBatchNorms rewrites conv→BN chains into a single conv with adjusted
// weights: w' = w * gamma/sqrt(var+eps) per output channel,
// b' = (b - mean) * gamma/sqrt(var+eps) + beta.
func foldBatchNorms(m *graph.Model) error {
	removed := make([]bool, len(m.Nodes))
	counts := consumerCount(m)
	prod := producerOf(m)
	for bi := range m.Nodes {
		bn := &m.Nodes[bi]
		if bn.Op != graph.OpBatchNorm || removed[bi] {
			continue
		}
		src := bn.Inputs[0]
		pi := prod[src]
		if pi < 0 || removed[pi] || !isFoldableCompute(m.Nodes[pi].Op) || counts[src] != 1 {
			continue
		}
		comp := &m.Nodes[pi]
		w, ok := m.Consts[comp.Inputs[1]]
		if !ok || w.DType != tensor.F32 {
			continue
		}
		gamma := m.Consts[bn.Inputs[1]]
		beta := m.Consts[bn.Inputs[2]]
		mean := m.Consts[bn.Inputs[3]]
		variance := m.Consts[bn.Inputs[4]]
		if gamma == nil || beta == nil || mean == nil || variance == nil {
			return fmt.Errorf("convert: batchnorm %q has non-constant parameters", bn.Name)
		}
		eps := bn.Attrs.Eps
		if eps == 0 {
			eps = 1e-5
		}
		outC := gamma.Len()
		scale := make([]float64, outC)
		for c := 0; c < outC; c++ {
			scale[c] = float64(gamma.F[c]) / math.Sqrt(float64(variance.F[c])+eps)
		}
		// Scale weights along the output-channel axis.
		switch comp.Op {
		case graph.OpConv2D, graph.OpDense: // [outC, ...]
			inner := w.Len() / outC
			for c := 0; c < outC; c++ {
				for i := 0; i < inner; i++ {
					w.F[c*inner+i] = float32(float64(w.F[c*inner+i]) * scale[c])
				}
			}
		case graph.OpDepthwiseConv2D: // [1, kh, kw, outC]
			outer := w.Len() / outC
			for o := 0; o < outer; o++ {
				for c := 0; c < outC; c++ {
					w.F[o*outC+c] = float32(float64(w.F[o*outC+c]) * scale[c])
				}
			}
		}
		// Fold into bias (create one if the conv had none).
		var bias *tensor.Tensor
		if len(comp.Inputs) >= 3 {
			bias = m.Consts[comp.Inputs[2]]
		}
		if bias == nil {
			bias = tensor.New(tensor.F32, outC)
			id := len(m.Tensors)
			m.Tensors = append(m.Tensors, graph.TensorInfo{
				Name: comp.Name + "/folded_bias", Shape: []int{outC}, DType: tensor.F32, Const: true,
			})
			m.Consts[id] = bias
			comp.Inputs = append(comp.Inputs, id)
			counts = append(counts, 1)
			prod = append(prod, -1)
		}
		for c := 0; c < outC; c++ {
			bias.F[c] = float32((float64(bias.F[c])-float64(mean.F[c]))*scale[c] + float64(beta.F[c]))
		}
		// Rewire: the compute node now produces the BN's output tensor.
		comp.Outputs[0] = bn.Outputs[0]
		prod[bn.Outputs[0]] = pi
		removed[bi] = true
	}
	dropRemoved(m, removed)
	return nil
}

func isFusableActivationTarget(op graph.OpType) bool {
	switch op {
	case graph.OpConv2D, graph.OpDepthwiseConv2D, graph.OpDense, graph.OpAdd:
		return true
	}
	return false
}

// fuseActivations merges ReLU/ReLU6 nodes into the producing compute op's
// fused-activation attribute.
func fuseActivations(m *graph.Model) error {
	removed := make([]bool, len(m.Nodes))
	counts := consumerCount(m)
	prod := producerOf(m)
	for ai := range m.Nodes {
		act := &m.Nodes[ai]
		var fused graph.Activation
		switch act.Op {
		case graph.OpReLU:
			fused = graph.ActReLU
		case graph.OpReLU6:
			fused = graph.ActReLU6
		default:
			continue
		}
		if removed[ai] {
			continue
		}
		src := act.Inputs[0]
		pi := prod[src]
		if pi < 0 || removed[pi] || !isFusableActivationTarget(m.Nodes[pi].Op) || counts[src] != 1 {
			continue
		}
		comp := &m.Nodes[pi]
		if comp.Attrs.Activation != graph.ActNone {
			continue
		}
		comp.Attrs.Activation = fused
		comp.Outputs[0] = act.Outputs[0]
		prod[act.Outputs[0]] = pi
		removed[ai] = true
	}
	dropRemoved(m, removed)
	return nil
}

func dropRemoved(m *graph.Model, removed []bool) {
	kept := m.Nodes[:0]
	for i := range m.Nodes {
		if !removed[i] {
			kept = append(kept, m.Nodes[i])
		}
	}
	m.Nodes = kept
}

// compact rebuilds the model keeping only tensors that are still referenced,
// remapping all ids. It validates the result.
func compact(m *graph.Model) (*graph.Model, error) {
	used := make([]bool, len(m.Tensors))
	for _, n := range m.Nodes {
		for _, id := range n.Inputs {
			used[id] = true
		}
		for _, id := range n.Outputs {
			used[id] = true
		}
	}
	for _, id := range m.Inputs {
		used[id] = true
	}
	for _, id := range m.Outputs {
		used[id] = true
	}
	remap := make([]int, len(m.Tensors))
	out := &graph.Model{
		Name:   m.Name,
		Format: m.Format,
		Consts: make(map[int]*tensor.Tensor),
		Meta:   m.Meta,
	}
	for id, u := range used {
		if !u {
			remap[id] = -1
			continue
		}
		remap[id] = len(out.Tensors)
		out.Tensors = append(out.Tensors, m.Tensors[id])
		if c, ok := m.Consts[id]; ok {
			out.Consts[remap[id]] = c
		}
	}
	mapIDs := func(ids []int) []int {
		r := make([]int, len(ids))
		for i, id := range ids {
			r[i] = remap[id]
		}
		return r
	}
	for _, n := range m.Nodes {
		nn := n
		nn.Inputs = mapIDs(n.Inputs)
		nn.Outputs = mapIDs(n.Outputs)
		out.Nodes = append(out.Nodes, nn)
	}
	out.Inputs = mapIDs(m.Inputs)
	out.Outputs = mapIDs(m.Outputs)
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("convert: compacted model invalid: %w", err)
	}
	return out, nil
}
