package convert

import (
	"fmt"

	"mlexray/internal/graph"
	"mlexray/internal/interp"
	"mlexray/internal/ops"
	"mlexray/internal/quant"
	"mlexray/internal/tensor"
)

// QuantOptions controls post-training quantization. The fields correspond to
// the §2 pitfalls the paper discusses: calibration clipping (outlier-inflated
// scales), symmetric vs asymmetric activation ranges, and per-tensor vs
// per-channel weight scales.
type QuantOptions struct {
	// WeightPerChannel selects per-channel symmetric int8 weight scales
	// (recommended); false squashes dissimilar channels under one scale.
	WeightPerChannel bool
	// ActClipPercentile drops the most extreme fraction of calibration
	// values per side before computing activation ranges (0 = strict
	// min/max).
	ActClipPercentile float64
	// ActSymmetric forces symmetric activation ranges with zero point 128.
	ActSymmetric bool
}

// DefaultQuantOptions matches TFLite's post-training full-integer defaults.
func DefaultQuantOptions() QuantOptions {
	return QuantOptions{WeightPerChannel: true}
}

// Calibrate runs the float model over the calibration inputs and returns
// observed activation params for every non-constant float tensor.
func Calibrate(m *graph.Model, calib []*tensor.Tensor, opts QuantOptions) (map[int]*quant.Params, error) {
	if len(calib) == 0 {
		return nil, fmt.Errorf("convert: calibration requires at least one representative input")
	}
	observers := make(map[int]*quant.Observer)
	obs := func(id int, t *tensor.Tensor) {
		if t.DType != tensor.F32 {
			return
		}
		o, ok := observers[id]
		if !ok {
			o = quant.NewObserver(opts.ActClipPercentile)
			observers[id] = o
		}
		o.Observe(t)
	}
	ip, err := interp.New(m, ops.NewReference(ops.Fixed()), interp.WithHook(func(ev interp.NodeEvent) {
		for j, id := range ev.Node.Outputs {
			obs(id, ev.Outputs[j])
		}
	}))
	if err != nil {
		return nil, fmt.Errorf("convert: calibration interpreter: %w", err)
	}
	for i, in := range calib {
		if err := ip.SetInput(0, in); err != nil {
			return nil, fmt.Errorf("convert: calibration input %d: %w", i, err)
		}
		// Observe the raw input too.
		inT, _ := ip.Tensor(m.Inputs[0])
		obs(m.Inputs[0], inT)
		if err := ip.Invoke(); err != nil {
			return nil, fmt.Errorf("convert: calibration invoke %d: %w", i, err)
		}
	}
	params := make(map[int]*quant.Params, len(observers))
	for id, o := range observers {
		mn, mx, err := o.Range()
		if err != nil {
			return nil, fmt.Errorf("convert: tensor %d: %w", id, err)
		}
		if opts.ActSymmetric {
			params[id] = quant.SymmetricU8Params(mn, mx)
		} else {
			params[id] = quant.AsymmetricU8Params(mn, mx)
		}
	}
	return params, nil
}

// Quantize performs post-training full-integer quantization of a mobile
// float model: activations become uint8 with calibrated params, weights
// become int8 (symmetric), biases int32; a Quantize node is prepended at the
// input and a Dequantize node appended at each output so the model keeps its
// float interface — exactly TFLite's full-integer layout.
func Quantize(src *graph.Model, calib []*tensor.Tensor, opts QuantOptions) (*graph.Model, error) {
	if src.Format == graph.FormatCheckpoint {
		return nil, fmt.Errorf("convert: quantize expects an optimized (mobile) model; run Optimize first")
	}
	actParams, err := Calibrate(src, calib, opts)
	if err != nil {
		return nil, err
	}
	m := src.Clone()

	// Pass 1: convert activation tensors to u8 with calibrated params.
	for id := range m.Tensors {
		ti := &m.Tensors[id]
		if ti.Const || ti.DType != tensor.F32 {
			continue
		}
		p, ok := actParams[id]
		if !ok {
			return nil, fmt.Errorf("convert: no calibration data for tensor %d (%s)", id, ti.Name)
		}
		ti.DType = tensor.U8
		ti.Quant = p
	}

	// Pass 2: quantize weights and biases of the compute ops.
	for ni := range m.Nodes {
		n := &m.Nodes[ni]
		if !isFoldableCompute(n.Op) {
			continue
		}
		wID := n.Inputs[1]
		w := m.Consts[wID]
		axis := 0
		if n.Op == graph.OpDepthwiseConv2D {
			axis = 3
		}
		var (
			wq *tensor.Tensor
			wp *quant.Params
		)
		if opts.WeightPerChannel {
			wq, wp, err = quant.QuantizeWeightsPerChannel(w, axis)
		} else {
			wq, wp, err = quant.QuantizeWeightsPerTensor(w)
		}
		if err != nil {
			return nil, fmt.Errorf("convert: node %q weights: %w", n.Name, err)
		}
		m.Consts[wID] = wq
		m.Tensors[wID].DType = tensor.I8
		m.Tensors[wID].Quant = wp

		inScale := m.Tensors[n.Inputs[0]].Quant.Scale(0)
		if len(n.Inputs) >= 3 {
			bID := n.Inputs[2]
			b := m.Consts[bID]
			bq := quant.QuantizeBias(b, inScale, wp)
			m.Consts[bID] = bq
			m.Tensors[bID].DType = tensor.I32
			m.Tensors[bID].Quant = quant.PerTensor(inScale*wp.Scale(0), 0)
		}
	}

	// Pass 3: restore a float interface. Each model input becomes a fresh
	// f32 tensor feeding a Quantize node into the old (now u8) tensor; each
	// output gets a Dequantize node into a fresh f32 tensor.
	var newNodes []graph.Node
	for i, inID := range m.Inputs {
		fID := len(m.Tensors)
		m.Tensors = append(m.Tensors, graph.TensorInfo{
			Name:  m.Tensors[inID].Name + "_f32",
			Shape: append([]int(nil), m.Tensors[inID].Shape...),
			DType: tensor.F32,
		})
		newNodes = append(newNodes, graph.Node{
			Op:      graph.OpQuantize,
			Name:    fmt.Sprintf("quantize_input_%d", i),
			Inputs:  []int{fID},
			Outputs: []int{inID},
		})
		m.Inputs[i] = fID
	}
	m.Nodes = append(newNodes, m.Nodes...)
	for i, outID := range m.Outputs {
		fID := len(m.Tensors)
		m.Tensors = append(m.Tensors, graph.TensorInfo{
			Name:  m.Tensors[outID].Name + "_f32",
			Shape: append([]int(nil), m.Tensors[outID].Shape...),
			DType: tensor.F32,
		})
		m.Nodes = append(m.Nodes, graph.Node{
			Op:      graph.OpDequantize,
			Name:    fmt.Sprintf("dequantize_output_%d", i),
			Inputs:  []int{outID},
			Outputs: []int{fID},
		})
		m.Outputs[i] = fID
	}

	out, err := compact(m)
	if err != nil {
		return nil, err
	}
	out.Format = graph.FormatQuant
	return out, nil
}

// QuantizeDynamicRange performs weight-only (dynamic-range) quantization:
// Dense, Embedding and SelfAttention weight matrices become int8 while all
// activations stay float — the scheme used for the text models, mirroring
// TFLite's treatment of BERT-class networks.
func QuantizeDynamicRange(src *graph.Model, opts QuantOptions) (*graph.Model, error) {
	m := src.Clone()
	quantizeConst := func(id int, perChannel bool) error {
		w := m.Consts[id]
		if w == nil || w.DType != tensor.F32 {
			return nil
		}
		var (
			wq  *tensor.Tensor
			wp  *quant.Params
			err error
		)
		if perChannel {
			wq, wp, err = quant.QuantizeWeightsPerChannel(w, 0)
		} else {
			wq, wp, err = quant.QuantizeWeightsPerTensor(w)
		}
		if err != nil {
			return err
		}
		m.Consts[id] = wq
		m.Tensors[id].DType = tensor.I8
		m.Tensors[id].Quant = wp
		return nil
	}
	for ni := range m.Nodes {
		n := &m.Nodes[ni]
		switch n.Op {
		case graph.OpDense:
			if err := quantizeConst(n.Inputs[1], opts.WeightPerChannel); err != nil {
				return nil, fmt.Errorf("convert: node %q: %w", n.Name, err)
			}
		case graph.OpEmbedding:
			if err := quantizeConst(n.Inputs[1], false); err != nil {
				return nil, fmt.Errorf("convert: node %q: %w", n.Name, err)
			}
		case graph.OpSelfAttention:
			for i := 0; i < 4; i++ {
				if err := quantizeConst(n.Inputs[1+2*i], false); err != nil {
					return nil, fmt.Errorf("convert: node %q: %w", n.Name, err)
				}
			}
		}
	}
	out, err := compact(m)
	if err != nil {
		return nil, err
	}
	out.Format = graph.FormatQuant
	return out, nil
}
