// Package mlexray is the public API of the ML-EXray reproduction: an edge-ML
// deployment validation framework (Qiu et al., MLSys 2022).
//
// The package exposes the two libraries the paper describes:
//
//   - The **instrumentation API** (§3.2): a Monitor that apps attach to
//     their inference pipelines to log model inputs/outputs, per-layer
//     details, performance metrics and peripheral sensors as key-value
//     telemetry records. Tensor payloads are captured lazily (raw bytes in
//     memory) and serialized by a pluggable codec: the human-readable JSONL
//     format or the length-prefixed binary format, streamed through the
//     Sink interface.
//
//   - The **deployment validation API** (§3.4): Validate compares an edge
//     log against a reference-pipeline log following the paper's Figure 2
//     flowchart — output/accuracy agreement first, per-layer normalized-rMSE
//     localisation when it drops, then built-in and user-defined assertion
//     functions for root-cause analysis (channel arrangement, normalization
//     range, resize filter, orientation, quantization drift, latency).
//
// A minimal instrumentation loop, spilling telemetry straight to a binary
// log so full-tensor capture never accumulates payloads in memory:
//
//	f, _ := os.Create("edge.mlxb")
//	sink := mlexray.NewBinarySink(f) // or NewJSONLSink / NewLogSink(f, format)
//	mon := mlexray.NewMonitor(mlexray.WithPerLayer(true), mlexray.WithSink(sink))
//	cl, err := pipeline.NewClassifier(model, pipeline.Options{Monitor: mon})
//	...
//	mon.OnInferenceStart()
//	// invoke ...
//	mon.OnInferenceStop(interp)
//	...
//	mon.Flush() // spill the last frame, flush the sink
//
// Reading accepts either encoding, auto-detected, and validation is
// identical whichever format carried the logs:
//
//	edgeLog, err := mlexray.ReadLog(edgeFile) // jsonl or binary
//	refLog, err := mlexray.ReadLog(refFile)
//	report, err := mlexray.Validate(edgeLog, refLog, mlexray.DefaultValidateOptions())
//	report.Render(os.Stdout)
//
// Replays scale past one simulated device with the fleet scheduler: a
// ShardPolicy splits the frame range across DeviceSpecs (profile + workers
// + batch + optional shard-log sink), each device replays its shard
// concurrently, and FleetValidate cross-validates the per-device shard logs
// — flagging the device a fault isolates to:
//
//	devs, _ := mlexray.ParseFleetSpec("Pixel4:2:8,Pixel3:1,Emulator-x86:1")
//	fleet := &mlexray.Fleet{Devices: devs, Policy: mlexray.Weighted{},
//		MonitorOptions: []mlexray.MonitorOption{mlexray.WithCaptureMode(mlexray.CaptureFull)}}
//	res, err := replay.FleetClassification(model, popts, images, fleet, nil)
//	shards := []mlexray.DeviceShardLog{{Device: "Pixel4", Log: res.DeviceLogs[0]}, ...}
//	fleetReport, err := mlexray.FleetValidate(shards, refLog, mlexray.DefaultValidateOptions())
//	fleetReport.Render(os.Stdout)
//
// The upload half of the paper's architecture is the ingestion service:
// devices stream telemetry to a collector (cmd/exrayd) through RemoteSinks,
// and the collector validates every stream incrementally as frames arrive —
// StreamValidator / FleetStreamValidator produce reports identical to the
// offline Validate / FleetValidate, without storing the logs:
//
//	srv, err := mlexray.NewIngestServer(mlexray.IngestServerOptions{Ref: refLog})
//	go http.ListenAndServe(":9090", srv)                       // or run cmd/exrayd
//	sink, err := mlexray.NewRemoteSink(mlexray.RemoteSinkOptions{
//		URL: "http://localhost:9090", Device: "Pixel4", Format: mlexray.FormatBinary, Gzip: true})
//	devs[0].Sink = sink                                        // fleet devices upload directly
//	...
//	report, err := srv.FleetReport()                           // or GET /fleet
//
// Past one collector's capacity the ingestion tier shards horizontally: an
// IngestGateway (cmd/exraygw) fronts a consistent-hash ring of collectors
// with the same HTTP surface, routing each device's uploads to its owning
// shard and merging per-shard accumulator snapshots into a /fleet report
// byte-identical to a single collector's:
//
//	gw, err := mlexray.NewIngestGateway(mlexray.IngestGatewayOptions{
//		Shards: []mlexray.IngestShard{{Name: "s0", URL: "http://host:9091"},
//			{Name: "s1", URL: "http://host:9092"}}})
//	go http.ListenAndServe(":9090", gw)                        // or run cmd/exraygw
//
// Everything underneath — the TFLite-like runtime with optimized/reference
// op resolvers, the converter and quantizer, the training substrate, the
// synthetic datasets and the device latency simulator — lives in internal/
// packages; see DESIGN.md for the system inventory.
package mlexray

import (
	"io"
	"net/http"

	"mlexray/internal/core"
	"mlexray/internal/device"
	"mlexray/internal/ingest"
	"mlexray/internal/obs"
	"mlexray/internal/ops"
	"mlexray/internal/runner"
	"mlexray/internal/shard"
)

// ---- kernel backend API ----

// KernelBackend selects the GEMM micro-kernel family the optimized op
// resolver's conv/dense/depthwise kernels lower through — the runtime's
// analogue of swapping TFLite's inner kernels while keeping the op graph
// fixed. The zero value is the blocked (cache-blocked gemmNT) default;
// "tiled" selects the register-tiled fused kernels with the int8 fast path.
// Reference and blocked promise bitwise-identical float output; tiled is
// contractually only validator-bounded on float (quantized output is
// bit-exact on every backend), which is exactly the benign numerical-drift
// class the paper's validators are built to bound.
type KernelBackend = ops.Backend

// The selectable kernel backends.
const (
	KernelBlocked   = ops.BackendBlocked
	KernelReference = ops.BackendReference
	KernelTiled     = ops.BackendTiled
)

// ParseKernelBackend parses a -kernel flag value ("reference", "blocked",
// "tiled"; empty selects the blocked default).
func ParseKernelBackend(s string) (KernelBackend, error) { return ops.ParseBackend(s) }

// KernelBackends lists every selectable kernel backend.
func KernelBackends() []KernelBackend { return ops.Backends() }

// ---- telemetry data model ----

// Record is one key-value telemetry entry.
type Record = core.Record

// Log is a sequence of telemetry records.
type Log = core.Log

// RecordKind classifies telemetry records.
type RecordKind = core.RecordKind

// Record kinds.
const (
	KindTensor = core.KindTensor
	KindStats  = core.KindStats
	KindMetric = core.KindMetric
	KindSensor = core.KindSensor
)

// Well-known record keys.
const (
	KeyPreprocessOutput  = core.KeyPreprocessOutput
	KeyModelInput        = core.KeyModelInput
	KeyModelOutput       = core.KeyModelOutput
	KeyInferenceLatency  = core.KeyInferenceLatency
	KeySensorOrientation = core.KeySensorOrientation
)

// LogFormat selects a telemetry log encoding.
type LogFormat = core.LogFormat

// Log formats: human-readable JSONL and the length-prefixed binary format
// (raw little-endian tensor payloads, no base64).
const (
	FormatJSONL  = core.FormatJSONL
	FormatBinary = core.FormatBinary
)

// ParseLogFormat parses a -log-format style name ("jsonl" or "binary").
func ParseLogFormat(s string) (LogFormat, error) { return core.ParseLogFormat(s) }

// LogEncoder is the writer side of a log codec.
type LogEncoder = core.LogEncoder

// LogDecoder is the reader side of a log codec: Next returns records in
// stream order and io.EOF at the end.
type LogDecoder = core.LogDecoder

// NewLogEncoder returns the encoder for the given format.
func NewLogEncoder(w io.Writer, format LogFormat) (LogEncoder, error) {
	return core.NewLogEncoder(w, format)
}

// OpenLog wraps r in the decoder matching its format, auto-detected from
// the leading bytes.
func OpenLog(r io.Reader) (LogDecoder, LogFormat, error) { return core.OpenLog(r) }

// ReadLog parses a whole telemetry log in either format, auto-detected.
func ReadLog(r io.Reader) (*Log, error) { return core.ReadLog(r) }

// ReadLogWithFormat parses a whole telemetry log and also reports which
// format it detected.
func ReadLogWithFormat(r io.Reader) (*Log, LogFormat, error) { return core.ReadLogWithFormat(r) }

// ---- instrumentation API ----

// Monitor is the EdgeML Monitor: the object apps use to emit telemetry.
type Monitor = core.Monitor

// CaptureMode selects stats-only vs full-tensor logging.
type CaptureMode = core.CaptureMode

// Capture modes.
const (
	CaptureStats = core.CaptureStats
	CaptureFull  = core.CaptureFull
)

// MonitorOption configures a Monitor.
type MonitorOption = core.MonitorOption

// NewMonitor constructs a Monitor (stats-only, no per-layer capture by
// default — the lightweight always-on configuration).
func NewMonitor(opts ...MonitorOption) *Monitor { return core.NewMonitor(opts...) }

// WithCaptureMode selects the logging depth.
func WithCaptureMode(m CaptureMode) MonitorOption { return core.WithCaptureMode(m) }

// WithPerLayer enables per-layer output and latency records.
func WithPerLayer(enabled bool) MonitorOption { return core.WithPerLayer(enabled) }

// WithSink puts the monitor in direct-to-sink spill mode: each completed
// frame streams to the sink instead of accumulating in memory. Call
// Monitor.Flush after the last frame.
func WithSink(s Sink) MonitorOption { return core.WithSink(s) }

// ---- parallel replay API ----

// ProcessFunc replays one dataset frame on a worker-local pipeline replica.
// A ProcessFunc that logs records must advance its shard monitor's frame
// exactly once (Monitor.NextFrame) before logging; every built-in pipeline
// does this on entry.
type ProcessFunc = runner.ProcessFunc

// WorkerFactory builds one replay worker's state around its monitor shard.
type WorkerFactory = runner.WorkerFactory

// ProcessBatchFunc replays a contiguous [start,end) frame range on a
// worker-local batched pipeline replica.
type ProcessBatchFunc = runner.ProcessBatchFunc

// BatchWorkerFactory builds one batch-aware replay worker around its monitor
// shard.
type BatchWorkerFactory = runner.BatchWorkerFactory

// ReplayOptions configures a parallel replay (worker count, frames per
// batch, reorder-window cap, shard monitor options, streaming sink).
type ReplayOptions = runner.Options

// Sink consumes telemetry frames in order: replays stream through it
// (ReplayOptions.Sink) and spill-mode monitors write to it directly.
type Sink = core.Sink

// FrameSink is the historical name replays used for Sink.
type FrameSink = runner.FrameSink

// LogSink is the interface of the built-in streaming sinks: a Sink that
// writes one of the log formats and reports records/bytes written.
type LogSink = core.LogSink

// NewLogSink wraps w in a streaming sink for the given format.
func NewLogSink(w io.Writer, format LogFormat) (LogSink, error) { return core.NewLogSink(w, format) }

// JSONLSink streams telemetry to a writer in the JSONL log format without
// retaining records in memory.
type JSONLSink = core.JSONLSink

// NewJSONLSink wraps w in a streaming JSONL log writer.
func NewJSONLSink(w io.Writer) *JSONLSink { return core.NewJSONLSink(w) }

// BinarySink streams telemetry in the length-prefixed binary log format —
// the low-overhead choice for full-tensor capture.
type BinarySink = core.BinarySink

// NewBinarySink wraps w in a streaming binary log writer.
func NewBinarySink(w io.Writer) *BinarySink { return core.NewBinarySink(w) }

// Replay shards a dataset replay across a worker pool, each worker owning a
// pipeline replica and a monitor shard, and returns the shard logs merged by
// frame index — record-for-record identical to a sequential replay (modulo
// wall-clock latency values), at roughly core-count throughput.
func Replay(frames int, factory WorkerFactory, opts ReplayOptions) (*Log, error) {
	return runner.Replay(frames, factory, opts)
}

// ReplayBatched shards a dataset replay in contiguous frame batches: each
// worker owns a batch-capable pipeline replica (e.g. a batched interpreter
// built on opts.BatchFrames) and processes whole [start,end) ranges per
// dispatch, amortizing per-node dispatch across the batch. The merged log
// keeps the Replay determinism contract frame for frame.
func ReplayBatched(frames int, factory BatchWorkerFactory, opts ReplayOptions) (*Log, error) {
	return runner.ReplayBatched(frames, factory, opts)
}

// MergeByFrame merges shard logs by frame index, renumbering sequence
// numbers globally (the merge Replay applies internally).
func MergeByFrame(shards ...*Log) *Log { return core.MergeByFrame(shards...) }

// ---- fleet replay API ----

// Fleet is the two-tier replay scheduler: a shard policy splits one dataset
// replay across a set of simulated devices, and every device runs its shard
// concurrently through the per-device replay engine with its own worker
// pool, batch size and optional shard-log sink. The merge of the per-device
// logs is byte-identical (modulo wall-clock values) to a sequential replay
// of the same shard assignment.
type Fleet = runner.Fleet

// DeviceSpec describes one device slot of a fleet: its simulated profile,
// worker count, batch size and optional per-device log sink.
type DeviceSpec = runner.DeviceSpec

// ShardPolicy distributes a fleet replay's frame range across devices.
type ShardPolicy = runner.ShardPolicy

// The built-in shard policies: cyclic chunk dealing, throughput-
// proportional dealing, and equal contiguous spans.
type (
	RoundRobin = runner.RoundRobin
	Weighted   = runner.Weighted
	Contiguous = runner.Contiguous
)

// FrameRange is a half-open [Start, End) interval of dataset frames — the
// unit of shard assignments.
type FrameRange = runner.Range

// FleetResult is a fleet replay's output: the merged log, the per-device
// shard logs and the shard assignment.
type FleetResult = runner.FleetResult

// FleetWorkerFactory builds one replay worker for a fleet device.
type FleetWorkerFactory = runner.FleetWorkerFactory

// FleetBatchWorkerFactory builds one batch-aware replay worker for a fleet
// device.
type FleetBatchWorkerFactory = runner.FleetBatchWorkerFactory

// DeviceProfile is a simulated device (latency model, logging overheads) —
// what DeviceSpec.Profile carries.
type DeviceProfile = device.Profile

// DeviceByName looks up a built-in device profile ("Pixel4", "Pixel4-GPU",
// "Pixel3", "Pixel3-GPU", "Emulator-x86").
func DeviceByName(name string) (*DeviceProfile, error) { return device.ByName(name) }

// DeviceProfiles returns all built-in device profiles.
func DeviceProfiles() []*DeviceProfile { return device.Profiles() }

// ParseFleetSpec parses the CLI fleet syntax "profile:workers[:batch],...".
func ParseFleetSpec(spec string) ([]DeviceSpec, error) { return runner.ParseFleetSpec(spec) }

// ParseShardPolicy resolves a policy name ("contiguous", "round-robin",
// "weighted") to its ShardPolicy.
func ParseShardPolicy(name string) (ShardPolicy, error) { return runner.ParseShardPolicy(name) }

// DeviceShardLog pairs a device name with its fleet-replay shard log, the
// input to FleetValidate.
type DeviceShardLog = core.DeviceShardLog

// FleetReport is the fleet-level cross-validation result: per-device
// accuracy/drift/latency rollups plus cross-device divergence (frames where
// one device disagrees with the reference while the rest of the fleet
// agrees — evidence of a device-local fault).
type FleetReport = core.FleetReport

// FleetDeviceReport is one device's rollup within a FleetReport.
type FleetDeviceReport = core.FleetDeviceReport

// FleetValidate cross-validates per-device shard logs against a reference
// log, flagging devices whose divergence isolates to them.
func FleetValidate(shards []DeviceShardLog, ref *Log, opts ValidateOptions) (*FleetReport, error) {
	return core.FleetValidate(shards, ref, opts)
}

// ---- telemetry ingestion API ----

// StreamValidator is the incremental deployment validator: it consumes one
// device's telemetry stream record by record (or frame by frame — it is also
// a Sink) and computes the validation Report in bounded memory, per-layer
// tensors folding into rollups as they arrive. The final report is identical
// to Validate over the same records; Validate itself delegates here.
type StreamValidator = core.StreamValidator

// NewStreamValidator builds an incremental validator checking a stream
// against the reference log.
func NewStreamValidator(ref *Log, opts ValidateOptions) *StreamValidator {
	return core.NewStreamValidator(ref, opts)
}

// FleetStreamValidator validates many concurrent device streams against one
// shared reference — the state behind the ingestion collector's /fleet
// report. Its Report equals FleetValidate over the same records.
type FleetStreamValidator = core.FleetStreamValidator

// NewFleetStreamValidator indexes the reference log for fleet-wide streaming
// validation.
func NewFleetStreamValidator(ref *Log, opts ValidateOptions) (*FleetStreamValidator, error) {
	return core.NewFleetStreamValidator(ref, opts)
}

// IngestServer is the telemetry ingestion collector: an http.Handler that
// accepts concurrent device log uploads (POST /ingest, chunked, either
// encoding, plain or gzip), validates each session incrementally, and serves
// per-device and fleet-wide reports (GET /devices/{id}, GET /fleet).
// cmd/exrayd wraps it as a daemon.
//
// With IngestServerOptions.DataDir set the collector is durable: accepted
// chunks are fsynced to per-session write-ahead segments before the ack,
// and a restarted collector replays them so the recovered reports are
// byte-identical to an uninterrupted run (Recovery reports what was
// restored). MaxSessions and MaxChunksPerSec add admission control — 503
// and 429 with Retry-After, which RemoteSink retries as transient.
// IdleTimeout (durable only) evicts idle sessions to free slots while
// their segments stay resurrectable; ReadTimeout/WriteTimeout arm
// per-request deadlines that shed slow-loris uploads. These hardening
// knobs are storm-tested by cmd/exraystorm, a fault-injecting
// device-swarm harness that pins the collector's graceful degradation.
type IngestServer = ingest.Server

// IngestServerOptions configures an IngestServer.
type IngestServerOptions = ingest.ServerOptions

// IngestRecoveryStats reports what an IngestServer's startup replay of its
// write-ahead log restored (IngestServer.Recovery).
type IngestRecoveryStats = ingest.RecoveryStats

// NewIngestServer builds a collector validating uploads against
// opts.Ref.
func NewIngestServer(opts IngestServerOptions) (*IngestServer, error) {
	return ingest.NewServer(opts)
}

// RemoteSink is the device side of the ingestion service: a Sink that
// streams a replay's telemetry to a collector in chunked, optionally
// gzip-compressed uploads with retry/backoff. Attach it as a replay's Sink
// (or a fleet DeviceSpec's) to upload instead of writing a local file.
type RemoteSink = ingest.RemoteSink

// RemoteSinkOptions configures a RemoteSink (collector URL, device ID,
// encoding, gzip, chunk size, retries). Failed uploads retry with
// jittered exponential backoff under two budgets — MaxRetries attempts
// and MaxElapsed total time — honoring the collector's Retry-After on
// 429/503.
type RemoteSinkOptions = ingest.SinkOptions

// NewRemoteSink builds a sink streaming to the collector at opts.URL.
func NewRemoteSink(opts RemoteSinkOptions) (*RemoteSink, error) {
	return ingest.NewRemoteSink(opts)
}

// ---- sharded ingestion API ----

// HashRing is the consistent-hash placement ring behind sharded ingest:
// a deterministic device→shard mapping (virtual nodes smooth the spread)
// that moves only ~K/N of K devices when a shard joins or leaves.
type HashRing = shard.Ring

// NewHashRing builds a ring over the named shards with the given per-shard
// virtual-node count (<= 0 means the default).
func NewHashRing(shards []string, vnodes int) (*HashRing, error) {
	return shard.NewRing(shards, vnodes)
}

// IngestShard names one collector shard of a gateway's ring and where it
// listens. Placement hashes the name, not the URL, so a shard can move
// hosts without relocating its devices.
type IngestShard = shard.ShardAddr

// IngestGateway fronts a consistent-hash ring of IngestServers with a
// single collector's HTTP surface: uploads route to the owning shard,
// /devices/{id} proxies, and /fleet merges per-shard accumulator snapshots
// through the same finalizer a lone collector runs — so the merged report
// is byte-identical to an unsharded deployment's. cmd/exraygw wraps it as
// a daemon.
type IngestGateway = shard.Gateway

// IngestGatewayOptions configures an IngestGateway (ring membership,
// virtual-node count, validation thresholds, proxy vs 307-redirect upload
// routing).
type IngestGatewayOptions = shard.GatewayOptions

// NewIngestGateway builds a gateway over the given shard set.
func NewIngestGateway(opts IngestGatewayOptions) (*IngestGateway, error) {
	return shard.NewGateway(opts)
}

// FleetSessionSnapshot is one device session's accumulator state, exported
// by a shard's /fleet/export endpoint (FleetStreamValidator.Snapshots) —
// the unit the gateway merges.
type FleetSessionSnapshot = core.FleetSessionSnapshot

// MergeFleetSnapshots folds per-shard session snapshots into the fleet
// report a single collector holding every session would produce.
func MergeFleetSnapshots(snaps []FleetSessionSnapshot, opts ValidateOptions) (*FleetReport, error) {
	return core.MergeFleetSnapshots(snaps, opts)
}

// ---- observability API ----

// MetricsRegistry holds the collector tier's self-telemetry: zero-alloc
// atomic counters, gauges and log-bucketed histograms, rendered in
// Prometheus text exposition format (GET /metrics on every collector and
// gateway). Pass one as IngestServerOptions.Metrics /
// IngestGatewayOptions.Metrics / RemoteSinkOptions.Metrics to share a
// registry across components, or leave nil for a private per-component
// registry. IngestServerOptions.DisableMetrics turns the layer off
// entirely — the benchmarked instrumentation overhead on the ingest hot
// path is under 3%.
type MetricsRegistry = obs.Registry

// NewMetricsRegistry builds an empty registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// RegisterRuntimeMetrics adds process-level gauges (goroutines, heap,
// GC pauses and cycles) to a registry, as cmd/exrayd and cmd/exraygw do.
func RegisterRuntimeMetrics(reg *MetricsRegistry) { obs.RegisterRuntimeMetrics(reg) }

// TraceRing is the bounded in-memory span store behind GET /debug/trace:
// RemoteSink mints an X-MLEXray-Trace ID per chunk
// (<stream-token>-<chunk-index>) and the gateway, the owning shard's
// ingest handler and the WAL append each record a hop against it, so one
// chunk's path through a sharded deployment is reconstructable from the
// rings alone (IngestServer.Traces, IngestGateway.Traces).
type TraceRing = obs.TraceRing

// TraceSpan is one recorded hop in a TraceRing.
type TraceSpan = obs.Span

// NewTraceRing builds a ring holding the last capacity spans
// (<= 0 means the default).
func NewTraceRing(capacity int) *TraceRing { return obs.NewTraceRing(capacity) }

// DebugMux mounts the observability surface — GET /metrics, GET
// /debug/trace and net/http/pprof — on one mux, for an opt-in debug
// listener (the daemons' -debug-addr). pprof lives only here, never on
// an ingest or routing address.
func DebugMux(reg *MetricsRegistry, ring *TraceRing) *http.ServeMux {
	return obs.DebugMux(reg, ring)
}

// SinkStats is a RemoteSink's client-side view of its upload session
// (RemoteSink.Stats): chunks, frames, records and wire bytes sent,
// retries, redirects followed, chunks given up and time spent backing
// off — what edgerun prints after each upload.
type SinkStats = ingest.SinkStats

// ---- validation API ----

// Report is the validator's output.
type Report = core.Report

// ValidateOptions tunes the validator.
type ValidateOptions = core.ValidateOptions

// LayerDiff is per-layer drift between edge and reference logs.
type LayerDiff = core.LayerDiff

// Finding is one triggered root-cause assertion.
type Finding = core.Finding

// Assertion is a root-cause check; implement it (or use AssertionFunc) to
// add domain knowledge to the validation flow.
type Assertion = core.Assertion

// AssertionFunc adapts a function to the Assertion interface.
type AssertionFunc = core.AssertionFunc

// AssertCtx is the evidence handed to assertions.
type AssertCtx = core.AssertCtx

// DefaultValidateOptions returns the standard thresholds and built-in
// assertions.
func DefaultValidateOptions() ValidateOptions { return core.DefaultValidateOptions() }

// Validate runs the deployment-validation flowchart on two logs.
func Validate(edge, ref *Log, opts ValidateOptions) (*Report, error) {
	return core.Validate(edge, ref, opts)
}

// CompareLayers computes per-layer drift between two per-layer logs.
func CompareLayers(edge, ref *Log) ([]LayerDiff, error) { return core.CompareLayers(edge, ref) }

// OutputAgreement computes the fraction of frames with matching model-output
// argmax.
func OutputAgreement(edge, ref *Log) (float64, error) { return core.OutputAgreement(edge, ref) }

// FirstSpike localises the earliest drift spike in a layer-diff series.
func FirstSpike(diffs []LayerDiff, threshold, jumpFactor float64) (LayerDiff, bool) {
	return core.FirstSpike(diffs, threshold, jumpFactor)
}

// BuiltinAssertions returns the standard root-cause assertion set.
func BuiltinAssertions() []Assertion { return core.BuiltinAssertions() }
