// Package mlexray is the public API of the ML-EXray reproduction: an edge-ML
// deployment validation framework (Qiu et al., MLSys 2022).
//
// The package exposes the two libraries the paper describes:
//
//   - The **instrumentation API** (§3.2): a Monitor that apps attach to
//     their inference pipelines to log model inputs/outputs, per-layer
//     details, performance metrics and peripheral sensors as key-value
//     telemetry records (JSONL logs).
//
//   - The **deployment validation API** (§3.4): Validate compares an edge
//     log against a reference-pipeline log following the paper's Figure 2
//     flowchart — output/accuracy agreement first, per-layer normalized-rMSE
//     localisation when it drops, then built-in and user-defined assertion
//     functions for root-cause analysis (channel arrangement, normalization
//     range, resize filter, orientation, quantization drift, latency).
//
// A minimal instrumentation loop:
//
//	mon := mlexray.NewMonitor(mlexray.WithPerLayer(true))
//	cl, err := pipeline.NewClassifier(model, pipeline.Options{Monitor: mon})
//	...
//	mon.OnInferenceStart()
//	// invoke ...
//	mon.OnInferenceStop(interp)
//
// And validation:
//
//	report, err := mlexray.Validate(edgeLog, refLog, mlexray.DefaultValidateOptions())
//	report.Render(os.Stdout)
//
// Everything underneath — the TFLite-like runtime with optimized/reference
// op resolvers, the converter and quantizer, the training substrate, the
// synthetic datasets and the device latency simulator — lives in internal/
// packages; see DESIGN.md for the system inventory.
package mlexray

import (
	"io"

	"mlexray/internal/core"
	"mlexray/internal/runner"
)

// ---- telemetry data model ----

// Record is one key-value telemetry entry.
type Record = core.Record

// Log is a sequence of telemetry records.
type Log = core.Log

// RecordKind classifies telemetry records.
type RecordKind = core.RecordKind

// Record kinds.
const (
	KindTensor = core.KindTensor
	KindStats  = core.KindStats
	KindMetric = core.KindMetric
	KindSensor = core.KindSensor
)

// Well-known record keys.
const (
	KeyPreprocessOutput  = core.KeyPreprocessOutput
	KeyModelInput        = core.KeyModelInput
	KeyModelOutput       = core.KeyModelOutput
	KeyInferenceLatency  = core.KeyInferenceLatency
	KeySensorOrientation = core.KeySensorOrientation
)

// ReadLog parses a JSONL telemetry log.
func ReadLog(r io.Reader) (*Log, error) { return core.ReadJSONL(r) }

// ---- instrumentation API ----

// Monitor is the EdgeML Monitor: the object apps use to emit telemetry.
type Monitor = core.Monitor

// CaptureMode selects stats-only vs full-tensor logging.
type CaptureMode = core.CaptureMode

// Capture modes.
const (
	CaptureStats = core.CaptureStats
	CaptureFull  = core.CaptureFull
)

// MonitorOption configures a Monitor.
type MonitorOption = core.MonitorOption

// NewMonitor constructs a Monitor (stats-only, no per-layer capture by
// default — the lightweight always-on configuration).
func NewMonitor(opts ...MonitorOption) *Monitor { return core.NewMonitor(opts...) }

// WithCaptureMode selects the logging depth.
func WithCaptureMode(m CaptureMode) MonitorOption { return core.WithCaptureMode(m) }

// WithPerLayer enables per-layer output and latency records.
func WithPerLayer(enabled bool) MonitorOption { return core.WithPerLayer(enabled) }

// ---- parallel replay API ----

// ProcessFunc replays one dataset frame on a worker-local pipeline replica.
// A ProcessFunc that logs records must advance its shard monitor's frame
// exactly once (Monitor.NextFrame) before logging; every built-in pipeline
// does this on entry.
type ProcessFunc = runner.ProcessFunc

// WorkerFactory builds one replay worker's state around its monitor shard.
type WorkerFactory = runner.WorkerFactory

// ProcessBatchFunc replays a contiguous [start,end) frame range on a
// worker-local batched pipeline replica.
type ProcessBatchFunc = runner.ProcessBatchFunc

// BatchWorkerFactory builds one batch-aware replay worker around its monitor
// shard.
type BatchWorkerFactory = runner.BatchWorkerFactory

// ReplayOptions configures a parallel replay (worker count, frames per
// batch, reorder-window cap, shard monitor options, streaming sink).
type ReplayOptions = runner.Options

// FrameSink receives merged frames in order during a streaming replay.
type FrameSink = runner.FrameSink

// JSONLSink streams telemetry to a writer in the JSONL log format without
// retaining records in memory.
type JSONLSink = core.JSONLSink

// NewJSONLSink wraps w in a streaming JSONL log writer.
func NewJSONLSink(w io.Writer) *JSONLSink { return core.NewJSONLSink(w) }

// Replay shards a dataset replay across a worker pool, each worker owning a
// pipeline replica and a monitor shard, and returns the shard logs merged by
// frame index — record-for-record identical to a sequential replay (modulo
// wall-clock latency values), at roughly core-count throughput.
func Replay(frames int, factory WorkerFactory, opts ReplayOptions) (*Log, error) {
	return runner.Replay(frames, factory, opts)
}

// ReplayBatched shards a dataset replay in contiguous frame batches: each
// worker owns a batch-capable pipeline replica (e.g. a batched interpreter
// built on opts.BatchFrames) and processes whole [start,end) ranges per
// dispatch, amortizing per-node dispatch across the batch. The merged log
// keeps the Replay determinism contract frame for frame.
func ReplayBatched(frames int, factory BatchWorkerFactory, opts ReplayOptions) (*Log, error) {
	return runner.ReplayBatched(frames, factory, opts)
}

// MergeByFrame merges shard logs by frame index, renumbering sequence
// numbers globally (the merge Replay applies internally).
func MergeByFrame(shards ...*Log) *Log { return core.MergeByFrame(shards...) }

// ---- validation API ----

// Report is the validator's output.
type Report = core.Report

// ValidateOptions tunes the validator.
type ValidateOptions = core.ValidateOptions

// LayerDiff is per-layer drift between edge and reference logs.
type LayerDiff = core.LayerDiff

// Finding is one triggered root-cause assertion.
type Finding = core.Finding

// Assertion is a root-cause check; implement it (or use AssertionFunc) to
// add domain knowledge to the validation flow.
type Assertion = core.Assertion

// AssertionFunc adapts a function to the Assertion interface.
type AssertionFunc = core.AssertionFunc

// AssertCtx is the evidence handed to assertions.
type AssertCtx = core.AssertCtx

// DefaultValidateOptions returns the standard thresholds and built-in
// assertions.
func DefaultValidateOptions() ValidateOptions { return core.DefaultValidateOptions() }

// Validate runs the deployment-validation flowchart on two logs.
func Validate(edge, ref *Log, opts ValidateOptions) (*Report, error) {
	return core.Validate(edge, ref, opts)
}

// CompareLayers computes per-layer drift between two per-layer logs.
func CompareLayers(edge, ref *Log) ([]LayerDiff, error) { return core.CompareLayers(edge, ref) }

// OutputAgreement computes the fraction of frames with matching model-output
// argmax.
func OutputAgreement(edge, ref *Log) (float64, error) { return core.OutputAgreement(edge, ref) }

// FirstSpike localises the earliest drift spike in a layer-diff series.
func FirstSpike(diffs []LayerDiff, threshold, jumpFactor float64) (LayerDiff, bool) {
	return core.FirstSpike(diffs, threshold, jumpFactor)
}

// BuiltinAssertions returns the standard root-cause assertion set.
func BuiltinAssertions() []Assertion { return core.BuiltinAssertions() }
